use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A value of the grid content language.
///
/// Collected management data is heterogeneous (counters, gauges, strings,
/// tables); the paper mandates a *common representation* so every grid can
/// interpret what the previous one produced (§3.1). `Value` is that
/// representation: a small, self-describing tree that serializes to FIPA
/// style s-expressions via [`Display`](fmt::Display) and parses back with
/// [`FromStr`].
///
/// # Examples
///
/// ```
/// use agentgrid_acl::Value;
///
/// let v = Value::list([
///     Value::symbol("sample"),
///     Value::from(42),
///     Value::from("eth0"),
/// ]);
/// let text = v.to_string();
/// assert_eq!(text, r#"(sample 42 "eth0")"#);
/// assert_eq!(text.parse::<Value>().unwrap(), v);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    /// The unit/empty value, printed as `nil`.
    #[default]
    Nil,
    /// A boolean, printed as `true` / `false`.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float, printed with enough digits to round-trip.
    Float(f64),
    /// A bare symbol (identifier).
    Symbol(String),
    /// A quoted string.
    Str(String),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A keyword map, printed as `(map :key value ...)` with sorted keys.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Creates a symbol value.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains whitespace, parentheses,
    /// quotes or a leading `:` — such symbols could not be re-parsed.
    pub fn symbol(name: impl Into<String>) -> Value {
        let name = name.into();
        assert!(
            is_valid_symbol(&name),
            "invalid symbol `{name}`: symbols must be non-empty and free of \
             whitespace, parentheses, quotes and a leading colon"
        );
        Value::Symbol(name)
    }

    /// Creates a list value from an iterator of values.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Creates a map value from `(key, value)` pairs.
    pub fn map<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float if this is a `Float` (or the exact value of an `Int`).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string contents if this is a `Str` or `Symbol`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) | Value::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the items if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the map if this is a `Map`.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` if this is a `Map`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Total number of nodes in this value tree (useful as a size metric).
    pub fn node_count(&self) -> usize {
        match self {
            Value::List(items) => 1 + items.iter().map(Value::node_count).sum::<usize>(),
            Value::Map(m) => 1 + m.values().map(Value::node_count).sum::<usize>(),
            _ => 1,
        }
    }
}

fn is_valid_symbol(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with(':')
        && s != "nil"
        && s != "true"
        && s != "false"
        && s != "map"
        && !s.chars().next().unwrap().is_ascii_digit()
        && !s.starts_with('-')
        && s.chars()
            .all(|c| !c.is_whitespace() && !matches!(c, '(' | ')' | '"' | '\\'))
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v.into())
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v.into())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl<V: Into<Value>> FromIterator<V> for Value {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Value::List(iter.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => f.write_str("nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                // Always keep a decimal point or exponent so the parser can
                // distinguish floats from ints on the way back.
                let s = format!("{x}");
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
            Value::Symbol(s) => f.write_str(s),
            Value::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        _ => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Value::List(items) => {
                f.write_str("(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")
            }
            Value::Map(m) => {
                f.write_str("(map")?;
                for (k, v) in m {
                    write!(f, " :{k} {v}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Error returned when parsing a [`Value`] from s-expression text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    message: String,
    offset: usize,
}

impl ParseValueError {
    /// Byte offset in the input where parsing failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseValueError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseValueError {
        ParseValueError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseValueError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some('(') => self.parse_list(),
            Some('"') => self.parse_string(),
            Some(')') => Err(self.error("unexpected `)`")),
            Some(_) => self.parse_atom(),
        }
    }

    fn parse_list(&mut self) -> Result<Value, ParseValueError> {
        self.bump(); // consume '('
        self.skip_ws();
        // A `(map :k v ...)` form parses into Value::Map.
        if self.input[self.pos..].starts_with("map")
            && matches!(
                self.input[self.pos + 3..].chars().next(),
                Some(c) if c.is_whitespace() || c == ')'
            )
        {
            self.pos += 3;
            return self.parse_map_body();
        }
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.error("unterminated list")),
                Some(')') => {
                    self.bump();
                    return Ok(Value::List(items));
                }
                Some(_) => items.push(self.parse_value()?),
            }
        }
    }

    fn parse_map_body(&mut self) -> Result<Value, ParseValueError> {
        let mut map = BTreeMap::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.error("unterminated map")),
                Some(')') => {
                    self.bump();
                    return Ok(Value::Map(map));
                }
                Some(':') => {
                    self.bump();
                    let key = self.take_symbol_text()?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                }
                Some(c) => return Err(self.error(format!("expected `:key`, found `{c}`"))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<Value, ParseValueError> {
        self.bump(); // consume '"'
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some('"') => return Ok(Value::Str(out)),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some(c) => return Err(self.error(format!("invalid escape `\\{c}`"))),
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn take_symbol_text(&mut self) -> Result<String, ParseValueError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_whitespace() || matches!(c, '(' | ')' | '"') {
                break;
            }
            self.bump();
        }
        if self.pos == start {
            return Err(self.error("expected atom"));
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    fn parse_atom(&mut self) -> Result<Value, ParseValueError> {
        let text = self.take_symbol_text()?;
        Ok(match text.as_str() {
            "nil" => Value::Nil,
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => {
                if let Ok(i) = text.parse::<i64>() {
                    Value::Int(i)
                } else if looks_numeric(&text) {
                    match text.parse::<f64>() {
                        Ok(x) => Value::Float(x),
                        Err(_) => {
                            return Err(self.error(format!("invalid number `{text}`")));
                        }
                    }
                } else {
                    Value::Symbol(text)
                }
            }
        })
    }
}

fn looks_numeric(s: &str) -> bool {
    let first = s.chars().next().unwrap_or(' ');
    first.is_ascii_digit() || first == '-' || first == '+'
}

impl FromStr for Value {
    type Err = ParseValueError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = Parser { input: s, pos: 0 };
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != s.len() {
            return Err(p.error("trailing input after value"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Nil,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Float(3.25),
            Value::symbol("cpu-load"),
            Value::Str("hello \"world\"\nline".to_owned()),
        ] {
            assert_eq!(v.to_string().parse::<Value>().unwrap(), v, "{v}");
        }
    }

    #[test]
    fn float_without_fraction_round_trips_as_float() {
        let v = Value::Float(2.0);
        let s = v.to_string();
        assert_eq!(s, "2.0");
        assert_eq!(s.parse::<Value>().unwrap(), v);
    }

    #[test]
    fn nested_list_round_trips() {
        let v = Value::list([
            Value::symbol("batch"),
            Value::list([Value::Int(1), Value::Int(2)]),
            Value::from("x"),
        ]);
        assert_eq!(v.to_string().parse::<Value>().unwrap(), v);
    }

    #[test]
    fn map_round_trips_with_sorted_keys() {
        let v = Value::map([("zeta", Value::Int(1)), ("alpha", Value::from("a"))]);
        assert_eq!(v.to_string(), r#"(map :alpha "a" :zeta 1)"#);
        assert_eq!(v.to_string().parse::<Value>().unwrap(), v);
    }

    #[test]
    fn empty_map_and_list_parse() {
        assert_eq!("()".parse::<Value>().unwrap(), Value::List(vec![]));
        assert_eq!(
            "(map)".parse::<Value>().unwrap(),
            Value::Map(BTreeMap::new())
        );
    }

    #[test]
    fn map_symbol_prefix_is_not_a_map() {
        // `mapper` begins with "map" but must parse as a symbol in a list.
        let v = "(mapper 1)".parse::<Value>().unwrap();
        assert_eq!(v, Value::list([Value::symbol("mapper"), Value::Int(1)]));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "(",
            "(a",
            "\"oops",
            ") ",
            "(map :k)",
            "1 2",
            "(map k 1)",
        ] {
            assert!(bad.parse::<Value>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = Value::map([("n", Value::Int(7))]);
        assert_eq!(v.get("n").and_then(Value::as_int), Some(7));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert!(Value::from(true).as_bool().unwrap());
    }

    #[test]
    fn node_count_counts_tree_nodes() {
        let v = Value::list([Value::Int(1), Value::list([Value::Int(2), Value::Int(3)])]);
        assert_eq!(v.node_count(), 5);
    }

    #[test]
    #[should_panic(expected = "invalid symbol")]
    fn symbol_rejects_whitespace() {
        Value::symbol("two words");
    }
}
