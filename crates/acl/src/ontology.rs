//! The `agentgrid-management` ontology.
//!
//! The paper requires a common, ontology-backed representation for data
//! exchanged between grids (§3.1: "This representation can be made using
//! XML and ontologies") and a FIPA-style resource-profile ontology used
//! when a container registers with the grid root (§3.5, Fig. 4). This
//! module defines those concept types and their mapping to the content
//! language ([`Value`]).
//!
//! Every concept implements [`ToContent`]/[`FromContent`], so it can be
//! placed into and recovered from [`AclMessage`](crate::AclMessage)
//! contents without an external serialization format.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Value;

/// Name of the management ontology, for the `ontology` message slot.
pub const MANAGEMENT_ONTOLOGY: &str = "agentgrid-management";

/// Conversion of an ontology concept into content-language form.
pub trait ToContent {
    /// Encodes the concept as a content-language value.
    fn to_content(&self) -> Value;
}

/// Conversion of content-language form back into an ontology concept.
pub trait FromContent: Sized {
    /// Decodes a concept from a content-language value.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError`] when `value` does not encode this concept.
    fn from_content(value: &Value) -> Result<Self, OntologyError>;
}

/// Error returned when decoding an ontology concept fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OntologyError {
    expected: &'static str,
    detail: String,
}

impl OntologyError {
    /// Creates an error for a concept kind with a human-readable detail.
    pub fn new(expected: &'static str, detail: impl Into<String>) -> Self {
        OntologyError {
            expected,
            detail: detail.into(),
        }
    }

    /// The concept that was expected.
    pub fn expected(&self) -> &'static str {
        self.expected
    }
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {}: {}", self.expected, self.detail)
    }
}

impl std::error::Error for OntologyError {}

fn require<'a>(v: &'a Value, key: &str, concept: &'static str) -> Result<&'a Value, OntologyError> {
    v.get(key)
        .ok_or_else(|| OntologyError::new(concept, format!("missing :{key}")))
}

fn req_str(v: &Value, key: &str, concept: &'static str) -> Result<String, OntologyError> {
    require(v, key, concept)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| OntologyError::new(concept, format!(":{key} is not a string")))
}

fn req_f64(v: &Value, key: &str, concept: &'static str) -> Result<f64, OntologyError> {
    require(v, key, concept)?
        .as_float()
        .ok_or_else(|| OntologyError::new(concept, format!(":{key} is not a number")))
}

fn req_u64(v: &Value, key: &str, concept: &'static str) -> Result<u64, OntologyError> {
    let i = require(v, key, concept)?
        .as_int()
        .ok_or_else(|| OntologyError::new(concept, format!(":{key} is not an integer")))?;
    u64::try_from(i).map_err(|_| OntologyError::new(concept, format!(":{key} is negative")))
}

/// A single observation collected from a managed device.
///
/// This is the normalized form every collector emits regardless of the
/// management-protocol *interface* (SNMP, CLI, …) it used — the paper's
/// "common representation" (§3.1).
///
/// # Examples
///
/// ```
/// use agentgrid_acl::ontology::{FromContent, Observation, ToContent};
///
/// let obs = Observation::new("router-1", "cpu.load", 87.5, 1200);
/// let round = Observation::from_content(&obs.to_content()).unwrap();
/// assert_eq!(round, obs);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Device the value was read from.
    pub device: String,
    /// Metric name, dot-separated (e.g. `if.eth0.in-octets`).
    pub metric: String,
    /// Observed numeric value.
    pub value: f64,
    /// Collection timestamp (milliseconds since scenario start).
    pub timestamp_ms: u64,
}

impl Observation {
    /// Creates an observation.
    pub fn new(
        device: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
        timestamp_ms: u64,
    ) -> Self {
        Observation {
            device: device.into(),
            metric: metric.into(),
            value,
            timestamp_ms,
        }
    }
}

impl ToContent for Observation {
    fn to_content(&self) -> Value {
        Value::map([
            ("concept", Value::symbol("observation")),
            ("device", Value::from(self.device.clone())),
            ("metric", Value::from(self.metric.clone())),
            ("value", Value::from(self.value)),
            ("ts", Value::Int(self.timestamp_ms as i64)),
        ])
    }
}

impl FromContent for Observation {
    fn from_content(value: &Value) -> Result<Self, OntologyError> {
        const C: &str = "observation";
        check_concept(value, C)?;
        Ok(Observation {
            device: req_str(value, "device", C)?,
            metric: req_str(value, "metric", C)?,
            value: req_f64(value, "value", C)?,
            timestamp_ms: req_u64(value, "ts", C)?,
        })
    }
}

fn check_concept(value: &Value, concept: &'static str) -> Result<(), OntologyError> {
    let tag = value
        .get("concept")
        .and_then(Value::as_str)
        .ok_or_else(|| OntologyError::new(concept, "missing :concept tag"))?;
    if tag != concept {
        return Err(OntologyError::new(concept, format!("value is a `{tag}`")));
    }
    Ok(())
}

/// A batch of observations shipped from one grid stage to the next.
///
/// Collector agents accumulate observations and forward them as one batch
/// (the paper's "file containing collected data", §3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedBatch {
    /// Identifier of the batch, unique per collector.
    pub batch_id: String,
    /// Collector that produced the batch.
    pub collector: String,
    /// Site the data was collected at.
    pub site: String,
    /// The observations.
    pub observations: Vec<Observation>,
}

impl CollectedBatch {
    /// Creates a batch.
    pub fn new(
        batch_id: impl Into<String>,
        collector: impl Into<String>,
        site: impl Into<String>,
        observations: Vec<Observation>,
    ) -> Self {
        CollectedBatch {
            batch_id: batch_id.into(),
            collector: collector.into(),
            site: site.into(),
            observations,
        }
    }
}

impl ToContent for CollectedBatch {
    fn to_content(&self) -> Value {
        Value::map([
            ("concept", Value::symbol("collected-batch")),
            ("batch-id", Value::from(self.batch_id.clone())),
            ("collector", Value::from(self.collector.clone())),
            ("site", Value::from(self.site.clone())),
            (
                "observations",
                Value::list(self.observations.iter().map(ToContent::to_content)),
            ),
        ])
    }
}

impl FromContent for CollectedBatch {
    fn from_content(value: &Value) -> Result<Self, OntologyError> {
        const C: &str = "collected-batch";
        check_concept(value, C)?;
        let obs_value = require(value, "observations", C)?;
        let items = obs_value
            .as_list()
            .ok_or_else(|| OntologyError::new(C, ":observations is not a list"))?;
        let observations = items
            .iter()
            .map(Observation::from_content)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CollectedBatch {
            batch_id: req_str(value, "batch-id", C)?,
            collector: req_str(value, "collector", C)?,
            site: req_str(value, "site", C)?,
            observations,
        })
    }
}

/// Resource profile a container registers with the grid root (Fig. 4).
///
/// The root's directory keeps one profile per container and uses it for
/// load balancing: *knowledge* (which analyses the container can run),
/// *capacity* (how fast) and current *load* (how busy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    /// Container name.
    pub container: String,
    /// Relative CPU capacity (1.0 = reference host).
    pub cpu_capacity: f64,
    /// Relative disk throughput (1.0 = reference host).
    pub disk_capacity: f64,
    /// Memory available to agents, in megabytes.
    pub memory_mb: u64,
    /// Analysis capabilities ("knowledge") this container offers.
    pub skills: Vec<String>,
    /// Current load in [0, 1] (updated via directory refresh).
    pub load: f64,
}

impl ResourceProfile {
    /// Creates a profile with zero load.
    pub fn new(
        container: impl Into<String>,
        cpu_capacity: f64,
        disk_capacity: f64,
        memory_mb: u64,
        skills: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        ResourceProfile {
            container: container.into(),
            cpu_capacity,
            disk_capacity,
            memory_mb,
            skills: skills.into_iter().map(Into::into).collect(),
            load: 0.0,
        }
    }

    /// Whether the container declares the given skill.
    pub fn has_skill(&self, skill: &str) -> bool {
        self.skills.iter().any(|s| s == skill)
    }

    /// Idle capacity estimate: `cpu_capacity * (1 - load)`.
    pub fn headroom(&self) -> f64 {
        self.cpu_capacity * (1.0 - self.load).max(0.0)
    }
}

impl ToContent for ResourceProfile {
    fn to_content(&self) -> Value {
        Value::map([
            ("concept", Value::symbol("resource-profile")),
            ("container", Value::from(self.container.clone())),
            ("cpu", Value::from(self.cpu_capacity)),
            ("disk", Value::from(self.disk_capacity)),
            ("memory-mb", Value::Int(self.memory_mb as i64)),
            (
                "skills",
                Value::list(self.skills.iter().map(|s| Value::from(s.clone()))),
            ),
            ("load", Value::from(self.load)),
        ])
    }
}

impl FromContent for ResourceProfile {
    fn from_content(value: &Value) -> Result<Self, OntologyError> {
        const C: &str = "resource-profile";
        check_concept(value, C)?;
        let skills_value = require(value, "skills", C)?;
        let skills = skills_value
            .as_list()
            .ok_or_else(|| OntologyError::new(C, ":skills is not a list"))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| OntologyError::new(C, "skill is not a string"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ResourceProfile {
            container: req_str(value, "container", C)?,
            cpu_capacity: req_f64(value, "cpu", C)?,
            disk_capacity: req_f64(value, "disk", C)?,
            memory_mb: req_u64(value, "memory-mb", C)?,
            skills,
            load: req_f64(value, "load", C)?,
        })
    }
}

/// Severity of an [`Alert`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum Severity {
    /// Informational finding.
    #[default]
    Info,
    /// Degradation that needs attention.
    Warning,
    /// Service-affecting problem.
    Critical,
}

impl Severity {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A problem found by the processor grid, pushed to users via the
/// interface grid (§3.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Rule that fired.
    pub rule: String,
    /// Device the problem concerns (may name several, comma-separated,
    /// for level-3 cross-device findings).
    pub device: String,
    /// Severity classification.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// When the alert was raised (ms since scenario start).
    pub timestamp_ms: u64,
}

impl Alert {
    /// Creates an alert.
    pub fn new(
        rule: impl Into<String>,
        device: impl Into<String>,
        severity: Severity,
        message: impl Into<String>,
        timestamp_ms: u64,
    ) -> Self {
        Alert {
            rule: rule.into(),
            device: device.into(),
            severity,
            message: message.into(),
            timestamp_ms,
        }
    }
}

impl ToContent for Alert {
    fn to_content(&self) -> Value {
        Value::map([
            ("concept", Value::symbol("alert")),
            ("rule", Value::from(self.rule.clone())),
            ("device", Value::from(self.device.clone())),
            ("severity", Value::symbol(self.severity.as_str())),
            ("message", Value::from(self.message.clone())),
            ("ts", Value::Int(self.timestamp_ms as i64)),
        ])
    }
}

impl FromContent for Alert {
    fn from_content(value: &Value) -> Result<Self, OntologyError> {
        const C: &str = "alert";
        check_concept(value, C)?;
        let severity = match require(value, "severity", C)?.as_str() {
            Some("info") => Severity::Info,
            Some("warning") => Severity::Warning,
            Some("critical") => Severity::Critical,
            other => return Err(OntologyError::new(C, format!("unknown severity {other:?}"))),
        };
        Ok(Alert {
            rule: req_str(value, "rule", C)?,
            device: req_str(value, "device", C)?,
            severity,
            message: req_str(value, "message", C)?,
            timestamp_ms: req_u64(value, "ts", C)?,
        })
    }
}

/// An analysis job offered by the processor-grid root to containers
/// (Fig. 3: "division of analysis tasks in the grid").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisTask {
    /// Task identifier.
    pub task_id: String,
    /// Skill required to run the task (e.g. `disk-analysis`).
    pub skill: String,
    /// Classified-data partition the task covers.
    pub partition: String,
    /// Analysis level: 1 = stateless, 2 = consolidation, 3 = correlation.
    pub level: u8,
    /// Relative size (number of records to analyze).
    pub size: u64,
}

impl AnalysisTask {
    /// Creates a task description.
    pub fn new(
        task_id: impl Into<String>,
        skill: impl Into<String>,
        partition: impl Into<String>,
        level: u8,
        size: u64,
    ) -> Self {
        AnalysisTask {
            task_id: task_id.into(),
            skill: skill.into(),
            partition: partition.into(),
            level,
            size,
        }
    }
}

impl ToContent for AnalysisTask {
    fn to_content(&self) -> Value {
        Value::map([
            ("concept", Value::symbol("analysis-task")),
            ("task-id", Value::from(self.task_id.clone())),
            ("skill", Value::from(self.skill.clone())),
            ("partition", Value::from(self.partition.clone())),
            ("level", Value::Int(self.level.into())),
            ("size", Value::Int(self.size as i64)),
        ])
    }
}

impl FromContent for AnalysisTask {
    fn from_content(value: &Value) -> Result<Self, OntologyError> {
        const C: &str = "analysis-task";
        check_concept(value, C)?;
        let level = req_u64(value, "level", C)?;
        let level =
            u8::try_from(level).map_err(|_| OntologyError::new(C, ":level out of range"))?;
        Ok(AnalysisTask {
            task_id: req_str(value, "task-id", C)?,
            skill: req_str(value, "skill", C)?,
            partition: req_str(value, "partition", C)?,
            level,
            size: req_u64(value, "size", C)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_round_trips() {
        let obs = Observation::new("sw-1", "if.1.in-octets", 12345.0, 99);
        assert_eq!(Observation::from_content(&obs.to_content()).unwrap(), obs);
    }

    #[test]
    fn batch_round_trips() {
        let batch = CollectedBatch::new(
            "b-1",
            "collector-0",
            "site-1",
            vec![
                Observation::new("r1", "cpu.load", 10.0, 1),
                Observation::new("r1", "mem.free", 512.0, 1),
            ],
        );
        assert_eq!(
            CollectedBatch::from_content(&batch.to_content()).unwrap(),
            batch
        );
    }

    #[test]
    fn profile_round_trips_and_queries() {
        let mut p = ResourceProfile::new("c1", 2.0, 1.0, 4096, ["cpu-analysis", "correlation"]);
        p.load = 0.25;
        let back = ResourceProfile::from_content(&p.to_content()).unwrap();
        assert_eq!(back, p);
        assert!(p.has_skill("correlation"));
        assert!(!p.has_skill("disk-analysis"));
        assert!((p.headroom() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn headroom_never_negative() {
        let mut p = ResourceProfile::new("c1", 1.0, 1.0, 1, ["x"]);
        p.load = 1.5;
        assert_eq!(p.headroom(), 0.0);
    }

    #[test]
    fn alert_round_trips_all_severities() {
        for severity in [Severity::Info, Severity::Warning, Severity::Critical] {
            let a = Alert::new("high-cpu", "host-3", severity, "cpu above 90%", 42);
            assert_eq!(Alert::from_content(&a.to_content()).unwrap(), a);
        }
    }

    #[test]
    fn task_round_trips() {
        let t = AnalysisTask::new("t-9", "disk-analysis", "site-1/disk", 2, 120);
        assert_eq!(AnalysisTask::from_content(&t.to_content()).unwrap(), t);
    }

    #[test]
    fn wrong_concept_tag_is_rejected() {
        let obs = Observation::new("d", "m", 1.0, 1);
        let err = Alert::from_content(&obs.to_content()).unwrap_err();
        assert_eq!(err.expected(), "alert");
    }

    #[test]
    fn missing_field_is_rejected() {
        let v = Value::map([("concept", Value::symbol("observation"))]);
        assert!(Observation::from_content(&v).is_err());
    }

    #[test]
    fn severity_orders_by_seriousness() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Critical);
    }
}
