use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Identifier of an agent, following the FIPA `name@platform` convention.
///
/// The platform part names the *container/site* an agent lives in; the
/// grid root uses it to route messages between sites. An identifier
/// without an `@` is local to the default platform.
///
/// # Examples
///
/// ```
/// use agentgrid_acl::AgentId;
///
/// let id = AgentId::new("collector-3@site-1");
/// assert_eq!(id.local_name(), "collector-3");
/// assert_eq!(id.platform(), Some("site-1"));
/// assert_eq!(id.to_string(), "collector-3@site-1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AgentId {
    name: String,
}

impl AgentId {
    /// Creates an agent identifier from its full name.
    pub fn new(name: impl Into<String>) -> Self {
        AgentId { name: name.into() }
    }

    /// Creates an identifier from a local name and a platform.
    ///
    /// ```
    /// use agentgrid_acl::AgentId;
    /// let id = AgentId::with_platform("root", "grid");
    /// assert_eq!(id.to_string(), "root@grid");
    /// ```
    pub fn with_platform(local: impl AsRef<str>, platform: impl AsRef<str>) -> Self {
        AgentId {
            name: format!("{}@{}", local.as_ref(), platform.as_ref()),
        }
    }

    /// The full name, e.g. `"collector-3@site-1"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The part before `@`, or the whole name when no platform is given.
    pub fn local_name(&self) -> &str {
        match self.name.split_once('@') {
            Some((local, _)) => local,
            None => &self.name,
        }
    }

    /// The part after `@`, if any.
    pub fn platform(&self) -> Option<&str> {
        self.name.split_once('@').map(|(_, p)| p)
    }

    /// Returns a copy of this identifier re-homed on `platform`.
    pub fn on_platform(&self, platform: &str) -> AgentId {
        AgentId::with_platform(self.local_name(), platform)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for AgentId {
    fn from(s: &str) -> Self {
        AgentId::new(s)
    }
}

impl From<String> for AgentId {
    fn from(s: String) -> Self {
        AgentId::new(s)
    }
}

/// Error returned when parsing an [`AgentId`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAgentIdError {
    kind: ParseAgentIdErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseAgentIdErrorKind {
    Empty,
    EmptyLocal,
    EmptyPlatform,
}

impl fmt::Display for ParseAgentIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseAgentIdErrorKind::Empty => f.write_str("agent id is empty"),
            ParseAgentIdErrorKind::EmptyLocal => f.write_str("agent id has empty local name"),
            ParseAgentIdErrorKind::EmptyPlatform => f.write_str("agent id has empty platform"),
        }
    }
}

impl std::error::Error for ParseAgentIdError {}

impl FromStr for AgentId {
    type Err = ParseAgentIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseAgentIdError {
                kind: ParseAgentIdErrorKind::Empty,
            });
        }
        if let Some((local, platform)) = s.split_once('@') {
            if local.is_empty() {
                return Err(ParseAgentIdError {
                    kind: ParseAgentIdErrorKind::EmptyLocal,
                });
            }
            if platform.is_empty() {
                return Err(ParseAgentIdError {
                    kind: ParseAgentIdErrorKind::EmptyPlatform,
                });
            }
        }
        Ok(AgentId::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_local_and_platform() {
        let id = AgentId::new("a@b");
        assert_eq!(id.local_name(), "a");
        assert_eq!(id.platform(), Some("b"));
    }

    #[test]
    fn local_only_has_no_platform() {
        let id = AgentId::new("solo");
        assert_eq!(id.local_name(), "solo");
        assert_eq!(id.platform(), None);
    }

    #[test]
    fn with_platform_round_trips() {
        let id = AgentId::with_platform("root", "grid");
        assert_eq!(id.local_name(), "root");
        assert_eq!(id.platform(), Some("grid"));
    }

    #[test]
    fn on_platform_rehomes() {
        let id = AgentId::new("pg-worker@site-1").on_platform("site-2");
        assert_eq!(id.to_string(), "pg-worker@site-2");
    }

    #[test]
    fn parse_rejects_empty_parts() {
        assert!("".parse::<AgentId>().is_err());
        assert!("@x".parse::<AgentId>().is_err());
        assert!("x@".parse::<AgentId>().is_err());
        assert!("x@y".parse::<AgentId>().is_ok());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(AgentId::new("n@p").to_string(), "n@p");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(AgentId::new("a@x") < AgentId::new("b@x"));
    }
}
