use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{AclMessage, AgentId, ConversationId, Performative, Value};

/// Wire envelope carrying an [`AclMessage`] between containers/sites.
///
/// In-process delivery passes `AclMessage` values directly; the envelope is
/// used by the inter-site transport (and by anything persisting messages).
/// The encoding is a simple length-prefixed field list — deliberately not a
/// full FIPA bit-efficient codec, but stable and self-contained.
///
/// # Examples
///
/// ```
/// use agentgrid_acl::{AclMessage, AgentId, Envelope, Performative};
///
/// let msg = AclMessage::builder(Performative::Inform)
///     .sender(AgentId::new("a@x"))
///     .receiver(AgentId::new("b@y"))
///     .content_text("(hello)")
///     .build()?;
/// let bytes = Envelope::seal(&msg).encode();
/// let back = Envelope::decode(bytes)?.open()?;
/// assert_eq!(back, msg);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    fields: Vec<(String, String)>,
}

const MAGIC: u32 = 0xA61D_0001;

impl Envelope {
    /// Wraps a message into an envelope.
    pub fn seal(message: &AclMessage) -> Envelope {
        let mut fields = vec![
            (
                "performative".to_owned(),
                message.performative().to_string(),
            ),
            ("sender".to_owned(), message.sender().to_string()),
            ("language".to_owned(), message.language().to_owned()),
            ("content".to_owned(), message.content().to_string()),
        ];
        for r in message.receivers() {
            fields.push(("receiver".to_owned(), r.to_string()));
        }
        if let Some(r) = message.reply_to() {
            fields.push(("reply-to".to_owned(), r.to_string()));
        }
        if let Some(o) = message.ontology() {
            fields.push(("ontology".to_owned(), o.to_owned()));
        }
        if let Some(p) = message.protocol() {
            fields.push(("protocol".to_owned(), p.to_owned()));
        }
        if let Some(c) = message.conversation_id() {
            fields.push(("conversation-id".to_owned(), c.to_string()));
        }
        if let Some(t) = message.in_reply_to() {
            fields.push(("in-reply-to".to_owned(), t.to_owned()));
        }
        if let Some(t) = message.reply_with() {
            fields.push(("reply-with".to_owned(), t.to_owned()));
        }
        Envelope { fields }
    }

    /// First value for a field name, if present.
    pub fn field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// All values for a field name (e.g. multiple `receiver`s).
    pub fn fields<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.fields
            .iter()
            .filter(move |(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the envelope to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u32(MAGIC);
        buf.put_u32(self.fields.len() as u32);
        for (k, v) in &self.fields {
            put_str(&mut buf, k);
            put_str(&mut buf, v);
        }
        buf.freeze()
    }

    /// Parses an envelope from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeEnvelopeError`] on a bad magic number, truncated
    /// input or invalid UTF-8.
    pub fn decode(bytes: Bytes) -> Result<Envelope, DecodeEnvelopeError> {
        let mut buf = bytes;
        if buf.remaining() < 8 {
            return Err(DecodeEnvelopeError::new("envelope too short"));
        }
        let magic = buf.get_u32();
        if magic != MAGIC {
            return Err(DecodeEnvelopeError::new(format!("bad magic 0x{magic:08x}")));
        }
        let n = buf.get_u32() as usize;
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            let k = get_str(&mut buf)?;
            let v = get_str(&mut buf)?;
            fields.push((k, v));
        }
        if buf.has_remaining() {
            return Err(DecodeEnvelopeError::new("trailing bytes after envelope"));
        }
        Ok(Envelope { fields })
    }

    /// Reconstructs the [`AclMessage`] inside.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeEnvelopeError`] if required fields are missing or
    /// malformed.
    pub fn open(&self) -> Result<AclMessage, DecodeEnvelopeError> {
        let performative: Performative = self
            .field("performative")
            .ok_or_else(|| DecodeEnvelopeError::new("missing performative"))?
            .parse()
            .map_err(|e| DecodeEnvelopeError::new(format!("{e}")))?;
        let sender = self
            .field("sender")
            .ok_or_else(|| DecodeEnvelopeError::new("missing sender"))?;
        let content: Value = self
            .field("content")
            .unwrap_or("nil")
            .parse()
            .map_err(|e| DecodeEnvelopeError::new(format!("bad content: {e}")))?;
        let mut builder = AclMessage::builder(performative)
            .sender(AgentId::new(sender))
            .content(content);
        if let Some(l) = self.field("language") {
            builder = builder.language(l);
        }
        for r in self.fields("receiver") {
            builder = builder.receiver(AgentId::new(r));
        }
        if let Some(r) = self.field("reply-to") {
            builder = builder.reply_to(AgentId::new(r));
        }
        if let Some(o) = self.field("ontology") {
            builder = builder.ontology(o);
        }
        if let Some(p) = self.field("protocol") {
            builder = builder.protocol(p);
        }
        if let Some(c) = self.field("conversation-id") {
            builder = builder.conversation(ConversationId::new(c));
        }
        if let Some(t) = self.field("in-reply-to") {
            builder = builder.in_reply_to(t);
        }
        if let Some(t) = self.field("reply-with") {
            builder = builder.reply_with(t);
        }
        builder
            .build()
            .map_err(|e| DecodeEnvelopeError::new(format!("{e}")))
    }

    /// Encoded size in bytes, for network accounting.
    pub fn encoded_len(&self) -> usize {
        8 + self
            .fields
            .iter()
            .map(|(k, v)| 8 + k.len() + v.len())
            .sum::<usize>()
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, DecodeEnvelopeError> {
    if buf.remaining() < 4 {
        return Err(DecodeEnvelopeError::new("truncated length"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(DecodeEnvelopeError::new("truncated string"));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| DecodeEnvelopeError::new("invalid utf-8"))
}

/// Error returned when decoding an [`Envelope`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeEnvelopeError {
    message: String,
}

impl DecodeEnvelopeError {
    fn new(message: impl Into<String>) -> Self {
        DecodeEnvelopeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeEnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid envelope: {}", self.message)
    }
}

impl std::error::Error for DecodeEnvelopeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AclMessage {
        AclMessage::builder(Performative::Cfp)
            .sender(AgentId::new("root@grid"))
            .receiver(AgentId::new("c1@grid"))
            .receiver(AgentId::new("c2@grid"))
            .reply_to(AgentId::new("broker@grid"))
            .ontology("agentgrid-management")
            .protocol("fipa-contract-net")
            .conversation(ConversationId::new("conv-7"))
            .reply_with("bid-1")
            .content(Value::list([Value::symbol("analyze"), Value::Int(3)]))
            .build()
            .unwrap()
    }

    #[test]
    fn seal_encode_decode_open_round_trips() {
        let msg = sample();
        let bytes = Envelope::seal(&msg).encode();
        let back = Envelope::decode(bytes).unwrap().open().unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn multiple_receivers_survive() {
        let env = Envelope::seal(&sample());
        let receivers: Vec<_> = env.fields("receiver").collect();
        assert_eq!(receivers, ["c1@grid", "c2@grid"]);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut raw = BytesMut::new();
        raw.put_u32(0xdead_beef);
        raw.put_u32(0);
        assert!(Envelope::decode(raw.freeze()).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = Envelope::seal(&sample()).encode();
        for cut in [0, 3, 7, bytes.len() / 2, bytes.len() - 1] {
            let truncated = bytes.slice(..cut);
            assert!(Envelope::decode(truncated).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut raw = BytesMut::from(&Envelope::seal(&sample()).encode()[..]);
        raw.put_u8(0);
        assert!(Envelope::decode(raw.freeze()).is_err());
    }

    #[test]
    fn open_requires_performative_and_sender() {
        let env = Envelope {
            fields: vec![("receiver".to_owned(), "x".to_owned())],
        };
        assert!(env.open().is_err());
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        let env = Envelope::seal(&sample());
        assert_eq!(env.encoded_len(), env.encode().len());
    }
}
