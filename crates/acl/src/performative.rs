use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The FIPA communicative acts (performatives) used in [`AclMessage`]s.
///
/// The full FIPA-ACL set is provided so the interaction protocols in
/// [`crate::protocol`] can be expressed faithfully; the management grids
/// predominantly use `Inform`, `Request`, `Cfp`, `Propose`,
/// `AcceptProposal`, `RejectProposal`, `Failure` and `Subscribe`.
///
/// [`AclMessage`]: crate::AclMessage
///
/// # Examples
///
/// ```
/// use agentgrid_acl::Performative;
/// assert_eq!(Performative::AcceptProposal.to_string(), "accept-proposal");
/// assert_eq!("cfp".parse::<Performative>().unwrap(), Performative::Cfp);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Performative {
    /// Accept a previously submitted proposal.
    AcceptProposal,
    /// Agree to perform a requested action.
    Agree,
    /// Cancel a previously requested action.
    Cancel,
    /// Call for proposals (opens a contract-net).
    Cfp,
    /// Confirm the truth of a proposition.
    Confirm,
    /// Inform that a proposition is false.
    Disconfirm,
    /// Action was attempted but failed.
    Failure,
    /// Inform that a proposition is true.
    Inform,
    /// Inform with an explicit `inform-if` embedding.
    InformIf,
    /// Inform of the object that corresponds to a descriptor.
    InformRef,
    /// Message was not understood.
    NotUnderstood,
    /// Ask another agent to forward a message.
    Propagate,
    /// Submit a proposal (contract-net bid).
    Propose,
    /// Ask another agent to add receivers.
    Proxy,
    /// Query whether a proposition is true.
    QueryIf,
    /// Query for the object matching a descriptor.
    QueryRef,
    /// Refuse to perform a requested action.
    Refuse,
    /// Reject a previously submitted proposal.
    RejectProposal,
    /// Request an action to be performed.
    Request,
    /// Request an action whenever a precondition becomes true.
    RequestWhen,
    /// Request an action each time a precondition becomes true.
    RequestWhenever,
    /// Subscribe to updates of a reference.
    Subscribe,
}

impl Performative {
    /// All performatives, in FIPA specification order.
    pub const ALL: [Performative; 22] = [
        Performative::AcceptProposal,
        Performative::Agree,
        Performative::Cancel,
        Performative::Cfp,
        Performative::Confirm,
        Performative::Disconfirm,
        Performative::Failure,
        Performative::Inform,
        Performative::InformIf,
        Performative::InformRef,
        Performative::NotUnderstood,
        Performative::Propagate,
        Performative::Propose,
        Performative::Proxy,
        Performative::QueryIf,
        Performative::QueryRef,
        Performative::Refuse,
        Performative::RejectProposal,
        Performative::Request,
        Performative::RequestWhen,
        Performative::RequestWhenever,
        Performative::Subscribe,
    ];

    /// The FIPA wire name, e.g. `"accept-proposal"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Performative::AcceptProposal => "accept-proposal",
            Performative::Agree => "agree",
            Performative::Cancel => "cancel",
            Performative::Cfp => "cfp",
            Performative::Confirm => "confirm",
            Performative::Disconfirm => "disconfirm",
            Performative::Failure => "failure",
            Performative::Inform => "inform",
            Performative::InformIf => "inform-if",
            Performative::InformRef => "inform-ref",
            Performative::NotUnderstood => "not-understood",
            Performative::Propagate => "propagate",
            Performative::Propose => "propose",
            Performative::Proxy => "proxy",
            Performative::QueryIf => "query-if",
            Performative::QueryRef => "query-ref",
            Performative::Refuse => "refuse",
            Performative::RejectProposal => "reject-proposal",
            Performative::Request => "request",
            Performative::RequestWhen => "request-when",
            Performative::RequestWhenever => "request-whenever",
            Performative::Subscribe => "subscribe",
        }
    }

    /// Whether this act normally terminates a conversation.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            Performative::Failure
                | Performative::Refuse
                | Performative::NotUnderstood
                | Performative::Cancel
        )
    }

    /// Whether this act expects a reply in the standard protocols.
    pub fn expects_reply(self) -> bool {
        matches!(
            self,
            Performative::Request
                | Performative::RequestWhen
                | Performative::RequestWhenever
                | Performative::Cfp
                | Performative::Propose
                | Performative::QueryIf
                | Performative::QueryRef
                | Performative::Subscribe
        )
    }
}

impl fmt::Display for Performative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing a [`Performative`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePerformativeError {
    input: String,
}

impl ParsePerformativeError {
    /// The rejected input.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParsePerformativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown performative `{}`", self.input)
    }
}

impl std::error::Error for ParsePerformativeError {}

impl FromStr for Performative {
    type Err = ParsePerformativeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Performative::ALL
            .iter()
            .copied()
            .find(|p| p.as_str() == s)
            .ok_or_else(|| ParsePerformativeError {
                input: s.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_round_trip_through_strings() {
        for p in Performative::ALL {
            assert_eq!(p.as_str().parse::<Performative>().unwrap(), p);
        }
    }

    #[test]
    fn unknown_name_is_rejected() {
        let err = "shout".parse::<Performative>().unwrap_err();
        assert_eq!(err.input(), "shout");
    }

    #[test]
    fn all_has_no_duplicates() {
        let mut names: Vec<_> = Performative::ALL.iter().map(|p| p.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Performative::ALL.len());
    }

    #[test]
    fn terminal_and_reply_classification() {
        assert!(Performative::Failure.is_terminal());
        assert!(!Performative::Inform.is_terminal());
        assert!(Performative::Cfp.expects_reply());
        assert!(!Performative::Inform.expects_reply());
    }
}
