//! Baseline management architectures the paper compares against (§4).
//!
//! * [`CentralizedManager`] — the classic single management station
//!   (Fig. 6a): one process collects raw data from every device, parses,
//!   stores and analyzes it all by itself;
//! * [`MultiAgentSystem`] — the agent-based but *non-grid* architecture
//!   of Fig. 5 / Fig. 6b: each site is a silo of collector agents, one
//!   classifier and one site manager; no cross-site integration, no
//!   workload distribution, no shared knowledge.
//!
//! Both facades expose the same `run(duration, tick)` shape as
//! [`agentgrid::ManagementGrid`], so integration tests and benchmarks
//! can compare the three architectures on identical scenarios; the
//! *performance* comparison (Figure 6) additionally runs all three on
//! the deterministic cost model via [`agentgrid::scenario`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod centralized;
mod multiagent;

pub use centralized::{CentralizedManager, CentralizedReport};
pub use multiagent::{MultiAgentSystem, SiteManagerAgent, SiteReport};
