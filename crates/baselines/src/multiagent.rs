use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use agentgrid::grid::{
    analyze_task, ClassifierAgent, CollectorAgent, CollectorInterface, DEFAULT_RULES,
};
use agentgrid_acl::ontology::{Alert, AnalysisTask};
use agentgrid_acl::{AclMessage, Value};
use agentgrid_net::{FaultInjector, Network, ScheduledFault};
use agentgrid_platform::{Agent, AgentCtx, Platform};
use agentgrid_rules::{parse_rules, KnowledgeBase};
use agentgrid_store::ManagementStore;
use parking_lot::Mutex;

/// Shared per-site state: the silo's store and its alert sink.
type SiteState = (Arc<Mutex<ManagementStore>>, Arc<Mutex<Vec<Alert>>>);

/// Per-site counters of the multi-agent baseline.
#[derive(Debug, Clone, Default)]
pub struct SiteReport {
    /// Records stored at this site.
    pub records: usize,
    /// Alerts raised at this site.
    pub alerts: Vec<Alert>,
    /// Analyses the site manager ran.
    pub analyses: u64,
}

/// The manager agent of one site silo (Fig. 5's "MG"): receives the
/// classifier's `data-ready` notifications and runs *every* analysis
/// itself — the architecture's bottleneck and the reason it "does not
/// scale well" (§4).
pub struct SiteManagerAgent {
    store: Arc<Mutex<ManagementStore>>,
    kb: KnowledgeBase,
    alerts: Arc<Mutex<Vec<Alert>>>,
    /// Analyses executed.
    pub analyses: u64,
    ready_seen: u64,
}

impl fmt::Debug for SiteManagerAgent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SiteManagerAgent")
            .field("analyses", &self.analyses)
            .finish()
    }
}

impl SiteManagerAgent {
    /// Creates a site manager over the site's store and alert sink.
    pub fn new(
        store: Arc<Mutex<ManagementStore>>,
        kb: KnowledgeBase,
        alerts: Arc<Mutex<Vec<Alert>>>,
    ) -> Self {
        SiteManagerAgent {
            store,
            kb,
            alerts,
            analyses: 0,
            ready_seen: 0,
        }
    }
}

impl Agent for SiteManagerAgent {
    fn on_message(&mut self, message: &AclMessage, ctx: &mut AgentCtx<'_>) {
        // Reuses the classifier's data-ready wire format by inspecting
        // the content map directly (the baseline has no broker).
        if message.content().get("concept").and_then(Value::as_str) != Some("data-ready") {
            return;
        }
        let Some(partitions) = message.content().get("partitions").and_then(Value::as_list) else {
            return;
        };
        self.ready_seen += 1;
        let level = if self.ready_seen.is_multiple_of(2) {
            2
        } else {
            1
        };
        let now = ctx.now_ms();
        let store = self.store.lock();
        for entry in partitions {
            let Some(name) = entry.get("name").and_then(Value::as_str) else {
                continue;
            };
            let size = entry
                .get("size")
                .and_then(Value::as_int)
                .unwrap_or(0)
                .max(0) as u64;
            let task =
                AnalysisTask::new(format!("site-t{}", self.analyses), name, name, level, size);
            let (alerts, _) = analyze_task(&store, &self.kb, &task, now);
            self.analyses += 1;
            self.alerts.lock().extend(alerts);
        }
    }
}

/// The non-grid multi-agent architecture (Fig. 5): per-site silos of
/// collector agents, one classifier and one [`SiteManagerAgent`].
/// "Each network has a similar structure and there's no relation among
/// different sites ... no kind of workload distribution."
///
/// # Examples
///
/// ```
/// use agentgrid_baselines::MultiAgentSystem;
/// use agentgrid_net::{Device, DeviceKind, Network};
///
/// let mut network = Network::new();
/// network.add_device(Device::builder("s1", DeviceKind::Server).site("hq").seed(1).build());
/// network.add_device(Device::builder("s2", DeviceKind::Server).site("branch").seed(2).build());
///
/// let mut mas = MultiAgentSystem::new(network, 2);
/// let per_site = mas.run(3 * 60_000, 60_000);
/// assert_eq!(per_site.len(), 2, "one silo per site, no integration");
/// ```
pub struct MultiAgentSystem {
    platform: Platform,
    network: Arc<Mutex<Network>>,
    injector: FaultInjector,
    /// Per-site shared state: (store, alerts).
    sites: BTreeMap<String, SiteState>,
    ticks: u64,
}

impl fmt::Debug for MultiAgentSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiAgentSystem")
            .field("sites", &self.sites.len())
            .field("ticks", &self.ticks)
            .finish()
    }
}

impl MultiAgentSystem {
    /// Builds the per-site silos: `collectors_per_site` collector agents
    /// (the paper's Fig. 6b uses 2), one classifier, one manager.
    ///
    /// # Panics
    ///
    /// Panics if `collectors_per_site` is zero or the default rules fail
    /// to parse (a bug).
    pub fn new(network: Network, collectors_per_site: usize) -> Self {
        assert!(collectors_per_site > 0, "need at least one collector");
        let kb =
            KnowledgeBase::from_rules(parse_rules(DEFAULT_RULES).expect("default rules parse"));
        let site_specs: Vec<(String, Vec<String>)> = network
            .sites()
            .map(|s| (s.name().to_owned(), s.device_names().to_vec()))
            .collect();
        let network = Arc::new(Mutex::new(network));
        let mut platform = Platform::new("mas");
        let mut sites = BTreeMap::new();

        for (site, devices) in site_specs {
            let container = format!("site-{site}");
            platform.add_container(&container);
            let store = Arc::new(Mutex::new(ManagementStore::default()));
            let alerts: Arc<Mutex<Vec<Alert>>> = Arc::new(Mutex::new(Vec::new()));

            let manager_id = platform
                .spawn(
                    &container,
                    &format!("mg-{site}"),
                    SiteManagerAgent::new(Arc::clone(&store), kb.clone(), Arc::clone(&alerts)),
                )
                .expect("container just added");
            let classifier_id = platform
                .spawn(
                    &container,
                    &format!("c-{site}"),
                    ClassifierAgent::new(Arc::clone(&store), manager_id),
                )
                .expect("container just added");
            for c in 0..collectors_per_site {
                let assigned: Vec<String> = devices
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % collectors_per_site == c)
                    .map(|(_, d)| d.clone())
                    .collect();
                if assigned.is_empty() {
                    continue;
                }
                platform
                    .spawn(
                        &container,
                        &format!("ac-{site}-{c}"),
                        CollectorAgent::new(
                            Arc::clone(&network),
                            assigned,
                            CollectorInterface::Snmp,
                            60_000,
                            classifier_id.clone(),
                            site.clone(),
                        ),
                    )
                    .expect("container just added");
            }
            sites.insert(site, (store, alerts));
        }

        MultiAgentSystem {
            platform,
            network,
            injector: FaultInjector::default(),
            sites,
            ticks: 0,
        }
    }

    /// Schedules a fault.
    pub fn with_fault(mut self, fault: ScheduledFault) -> Self {
        self.injector.push(fault);
        self
    }

    /// Runs for `duration_ms` with the given tick and returns per-site
    /// reports.
    ///
    /// # Panics
    ///
    /// Panics if `tick_ms` is zero.
    pub fn run(&mut self, duration_ms: u64, tick_ms: u64) -> BTreeMap<String, SiteReport> {
        assert!(tick_ms > 0, "tick must be positive");
        let steps = duration_ms / tick_ms;
        for _ in 0..steps {
            let now = self.ticks * tick_ms;
            {
                let mut network = self.network.lock();
                // Apply scheduled faults before sampling, so a fault that
                // clears at time T no longer taints the sample taken at T.
                self.injector.apply(&mut network, now);
                network.tick_all(now);
            }
            self.platform.run_until_idle(now);
            self.ticks += 1;
        }
        self.sites
            .iter()
            .map(|(site, (store, alerts))| {
                (
                    site.clone(),
                    SiteReport {
                        records: store.lock().len(),
                        alerts: alerts.lock().clone(),
                        analyses: 0, // counted inside the agent; alerts are the output
                    },
                )
            })
            .collect()
    }

    /// Messages delivered so far (traffic accounting).
    pub fn messages_delivered(&self) -> u64 {
        self.platform.delivered_count()
    }

    /// Site names, in order.
    pub fn site_names(&self) -> impl Iterator<Item = &str> {
        self.sites.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_net::{Device, DeviceKind, FaultKind};

    fn two_site_network() -> Network {
        let mut net = Network::new();
        for (i, site) in [(0, "hq"), (1, "hq"), (2, "branch")] {
            net.add_device(
                Device::builder(format!("s{i}"), DeviceKind::Server)
                    .site(site)
                    .seed(i)
                    .build(),
            );
        }
        net
    }

    #[test]
    fn sites_are_isolated_silos() {
        let mut mas = MultiAgentSystem::new(two_site_network(), 2);
        let reports = mas.run(3 * 60_000, 60_000);
        assert_eq!(reports.len(), 2);
        assert!(reports["hq"].records > 0);
        assert!(reports["branch"].records > 0);
        // Silo isolation: hq's store only has hq devices.
        // (Indirectly: record counts differ because device counts do.)
        assert!(reports["hq"].records > reports["branch"].records);
    }

    #[test]
    fn site_fault_alerts_only_within_its_silo() {
        let mut mas = MultiAgentSystem::new(two_site_network(), 2)
            .with_fault(ScheduledFault::from("s2", FaultKind::CpuRunaway, 60_000));
        let reports = mas.run(5 * 60_000, 60_000);
        assert!(reports["branch"]
            .alerts
            .iter()
            .any(|a| a.device == "s2" && a.rule == "high-cpu"));
        assert!(reports["hq"].alerts.iter().all(|a| a.device != "s2"));
    }

    #[test]
    fn traffic_flows_through_the_platform() {
        let mut mas = MultiAgentSystem::new(two_site_network(), 1);
        mas.run(2 * 60_000, 60_000);
        assert!(mas.messages_delivered() > 0);
    }
}
