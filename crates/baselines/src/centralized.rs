use std::fmt;

use agentgrid::grid::DEFAULT_RULES;
use agentgrid::workflow::{self, WorkflowTrace};
use agentgrid_acl::ontology::Alert;
use agentgrid_net::{FaultInjector, Network, ScheduledFault};
use agentgrid_rules::{parse_rules, KnowledgeBase};
use agentgrid_store::ManagementStore;

/// Result of a [`CentralizedManager`] run.
#[derive(Debug, Clone)]
pub struct CentralizedReport {
    /// Simulated duration covered.
    pub duration_ms: u64,
    /// Alerts raised, in order.
    pub alerts: Vec<Alert>,
    /// Points in the store at the end.
    pub records_stored: usize,
    /// Workflow passes executed.
    pub passes: u64,
    /// Trace of the last pass (Fig. 1 stages).
    pub last_trace: WorkflowTrace,
}

impl fmt::Display for CentralizedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "centralized run over {} ms: {} passes, {} records, {} alerts",
            self.duration_ms,
            self.passes,
            self.records_stored,
            self.alerts.len()
        )?;
        f.write_str(&self.last_trace.render())
    }
}

/// The classic centralized management station (Fig. 6a): everything —
/// collection, parsing, storage, inference — runs in one place, as one
/// sequential workflow (Fig. 1) per poll cycle.
///
/// # Examples
///
/// ```
/// use agentgrid_baselines::CentralizedManager;
/// use agentgrid_net::{Device, DeviceKind, Network};
///
/// let mut network = Network::new();
/// network.add_device(Device::builder("s1", DeviceKind::Server).seed(3).build());
/// let mut manager = CentralizedManager::new(network);
/// let report = manager.run(3 * 60_000, 60_000);
/// assert_eq!(report.passes, 3);
/// assert!(report.records_stored > 0);
/// ```
pub struct CentralizedManager {
    network: Network,
    store: ManagementStore,
    kb: KnowledgeBase,
    injector: FaultInjector,
    alerts: Vec<Alert>,
    passes: u64,
    ticks: u64,
}

impl fmt::Debug for CentralizedManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CentralizedManager")
            .field("devices", &self.network.device_count())
            .field("passes", &self.passes)
            .finish()
    }
}

impl CentralizedManager {
    /// Creates a manager over a network with the default rules.
    pub fn new(network: Network) -> Self {
        CentralizedManager {
            network,
            store: ManagementStore::default(),
            kb: KnowledgeBase::from_rules(parse_rules(DEFAULT_RULES).expect("default rules parse")),
            injector: FaultInjector::default(),
            alerts: Vec::new(),
            passes: 0,
            ticks: 0,
        }
    }

    /// Replaces the rule base.
    ///
    /// # Panics
    ///
    /// Panics if `rules` does not parse.
    pub fn with_rules(mut self, rules: &str) -> Self {
        self.kb = KnowledgeBase::from_rules(parse_rules(rules).expect("rules must parse"));
        self
    }

    /// Schedules a fault.
    pub fn with_fault(mut self, fault: ScheduledFault) -> Self {
        self.injector.push(fault);
        self
    }

    /// Runs for `duration_ms`, one workflow pass per `tick_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `tick_ms` is zero.
    pub fn run(&mut self, duration_ms: u64, tick_ms: u64) -> CentralizedReport {
        assert!(tick_ms > 0, "tick must be positive");
        let steps = duration_ms / tick_ms;
        let mut last_trace = WorkflowTrace::default();
        for _ in 0..steps {
            let now = self.ticks * tick_ms;
            self.injector.apply(&mut self.network, now);
            self.network.tick_all(now);
            let (alerts, trace) =
                workflow::run_pass(&mut self.network, &mut self.store, &self.kb, now);
            self.alerts.extend(alerts);
            last_trace = trace;
            self.passes += 1;
            self.ticks += 1;
        }
        CentralizedReport {
            duration_ms,
            alerts: self.alerts.clone(),
            records_stored: self.store.len(),
            passes: self.passes,
            last_trace,
        }
    }

    /// The accumulated alerts.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The management store.
    pub fn store(&self) -> &ManagementStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::ontology::Severity;
    use agentgrid_net::{Device, DeviceKind, FaultKind};

    fn network() -> Network {
        let mut net = Network::new();
        for i in 0..2 {
            net.add_device(
                Device::builder(format!("s{i}"), DeviceKind::Server)
                    .seed(i)
                    .build(),
            );
        }
        net
    }

    #[test]
    fn collects_and_stores_every_pass() {
        let mut manager = CentralizedManager::new(network());
        let report = manager.run(5 * 60_000, 60_000);
        assert_eq!(report.passes, 5);
        assert!(report.records_stored > 0);
        assert_eq!(report.last_trace.stages.len(), 4);
    }

    #[test]
    fn detects_injected_cpu_fault() {
        let mut manager = CentralizedManager::new(network()).with_fault(ScheduledFault::from(
            "s0",
            FaultKind::CpuRunaway,
            60_000,
        ));
        let report = manager.run(5 * 60_000, 60_000);
        assert!(report
            .alerts
            .iter()
            .any(|a| a.device == "s0" && a.severity == Severity::Critical));
    }

    #[test]
    fn custom_rules_replace_defaults() {
        let mut manager = CentralizedManager::new(network()).with_rules(
            r#"rule "everything" {
                when cpu(device: ?d, value: ?v)
                if ?v >= 0
                then emit info ?d "cpu seen"
            }"#,
        );
        let report = manager.run(60_000, 60_000);
        assert!(report.alerts.iter().all(|a| a.rule == "everything"));
        assert!(!report.alerts.is_empty());
    }

    #[test]
    fn incremental_runs_accumulate() {
        let mut manager = CentralizedManager::new(network());
        manager.run(60_000, 60_000);
        let report = manager.run(60_000, 60_000);
        assert_eq!(report.passes, 2);
    }
}
