//! The seeded network adversary and the opt-in reliable-delivery layer.
//!
//! The paper's grids assume a benign transport; this module makes the
//! transport hostile **on purpose**, and then makes delivery survive it.
//! Two independent, individually opt-in pieces share one state machine:
//!
//! * **The adversary** — a composable set of per-link fault rules
//!   ([`LinkFaults`]: probabilistic drop, fixed-plus-jittered sim-time
//!   delay, duplication, bounded reordering) selected by [`LinkSelector`],
//!   plus **named partitions** (groups of containers that cannot exchange
//!   messages until the partition heals). Every decision is a pure
//!   function of `(seed, link, sequence, attempt)` through a splitmix64
//!   mixer, so the same seed replays the same faults bit-for-bit on the
//!   deterministic runtimes.
//! * **Reliability** ([`ReliabilityConfig`]) — per-(sender, receiver)
//!   sequence numbers, a bounded sender-side retransmit buffer driven by
//!   seeded exponential backoff, and a bounded receiver-side dedup
//!   window. With it enabled, effective delivery over a lossy link is
//!   **exactly once**: dropped and partition-blocked legs are
//!   retransmitted until the link lets them through, and duplicates
//!   (injected by the adversary or raced in by a retransmission) are
//!   suppressed at the dedup window.
//!
//! The acknowledgement channel is modelled as instantaneous and
//! reliable: a leg that reaches its mailbox is acked in the same
//! instant, so the retransmit buffer holds exactly the legs the
//! adversary refused. That is the standard simulator simplification —
//! the interesting failure surface (loss, reordering, duplication,
//! partitions on the *data* path) is fully exercised, without modelling
//! a second lossy channel whose failures reduce to more retransmits.
//!
//! Tie-breaking when several fault rules match one link is **union
//! semantics**: drop and duplication probabilities add (saturating at
//! certainty), delays and reorder windows take the maximum. A fault
//! window is closed by removing exactly the rules its selector opened
//! ([`NetCommand::ClearLinkFaults`]), so overlapping windows no longer
//! clobber each other.
//!
//! Everything here is wired through [`NetCommand`], which all three
//! runtimes accept via
//! [`Runtime::net_command`](crate::runtime::Runtime::net_command) — the
//! adversary sits in the one shared routing path
//! ([`crate::delivery`]), so the deterministic stepper, the pool and
//! the threaded runtime all misbehave identically.

use std::collections::{BTreeMap, BTreeSet};

use agentgrid_acl::{AgentId, SharedMessage};
use agentgrid_telemetry::{EventKind, Telemetry};

use crate::delivery::ContainerBatch;
use crate::platform::TransportFault;

/// Default bound on the retransmit buffer. Legs past the cap give up
/// (counted by [`NetStats::retransmit_overflow`]) instead of growing
/// memory without limit during a long partition.
pub const RETRANSMIT_CAP: usize = 4096;

/// Default bound on the per-link dedup window (highest sequence numbers
/// seen). Old entries age out lowest-first; sequence numbers are
/// monotone per link, so the window always covers the recent past.
pub const DEDUP_WINDOW: usize = 1024;

/// SplitMix64 — the same stateless mixer the recovery layer uses
/// (`agentgrid::recovery::splitmix64`), duplicated here because the
/// platform sits below the core crate. Keep the two in sync.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stable 64-bit key for a (sender, receiver) link.
fn link_key(sender: &AgentId, receiver: &AgentId) -> u64 {
    let mut h = 0x006e_6574_u64; // "net"
    for b in sender.name().bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    h = splitmix64(h ^ 0x2f);
    for b in receiver.name().bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    h
}

/// `sender->receiver`, the link label used by flight-recorder events.
fn link_label(sender: &AgentId, receiver: &AgentId) -> String {
    format!("{}->{}", sender.name(), receiver.name())
}

/// Which links a fault rule applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinkSelector {
    /// Every link.
    All,
    /// Legs addressed to this agent.
    To(AgentId),
    /// Legs sent by this agent.
    From(AgentId),
    /// Legs from the first agent to the second (directional).
    Between(AgentId, AgentId),
}

impl LinkSelector {
    /// Whether the selector covers the `sender -> receiver` link.
    pub fn matches(&self, sender: &AgentId, receiver: &AgentId) -> bool {
        match self {
            LinkSelector::All => true,
            LinkSelector::To(to) => receiver == to,
            LinkSelector::From(from) => sender == from,
            LinkSelector::Between(from, to) => sender == from && receiver == to,
        }
    }
}

/// A composable bundle of per-link faults. `Default` is benign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkFaults {
    /// Probability of silently dropping a leg, in parts per million
    /// (1_000_000 = always).
    pub drop_ppm: u32,
    /// Fixed delivery delay in simulated milliseconds.
    pub delay_ms: u64,
    /// Additional seeded jitter: each delayed leg waits an extra
    /// `0..=delay_jitter_ms`.
    pub delay_jitter_ms: u64,
    /// Probability of delivering a leg twice, in parts per million.
    pub duplicate_ppm: u32,
    /// Bounded reordering: legs may be permuted within windows of this
    /// many batch entries (`0` or `1` = in-order).
    pub reorder_window: u32,
}

impl LinkFaults {
    /// Whether the bundle does nothing.
    pub fn is_benign(&self) -> bool {
        *self == LinkFaults::default()
    }

    /// Union-merge of two matching rules: probabilities add (capped at
    /// certainty), delays and windows take the maximum.
    fn merge(&mut self, other: &LinkFaults) {
        self.drop_ppm = self.drop_ppm.saturating_add(other.drop_ppm).min(1_000_000);
        self.delay_ms = self.delay_ms.max(other.delay_ms);
        self.delay_jitter_ms = self.delay_jitter_ms.max(other.delay_jitter_ms);
        self.duplicate_ppm = self
            .duplicate_ppm
            .saturating_add(other.duplicate_ppm)
            .min(1_000_000);
        self.reorder_window = self.reorder_window.max(other.reorder_window);
    }
}

/// The opt-in reliable-delivery policy: retransmit backoff (mirroring
/// the recovery layer's `BackoffPolicy` shape) plus buffer bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// First-retransmit delay in simulated milliseconds.
    pub base_ms: u64,
    /// Backoff multiplier per attempt.
    pub factor: u32,
    /// Cap on the pre-jitter retransmit delay.
    pub max_ms: u64,
    /// Seed decorrelating retransmit jitter across links.
    pub jitter_seed: u64,
    /// Bound on the retransmit buffer (see [`RETRANSMIT_CAP`]).
    pub retransmit_cap: usize,
    /// Bound on each link's dedup window (see [`DEDUP_WINDOW`]).
    pub dedup_window: usize,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            base_ms: 5_000,
            factor: 2,
            max_ms: 60_000,
            jitter_seed: 0,
            retransmit_cap: RETRANSMIT_CAP,
            dedup_window: DEDUP_WINDOW,
        }
    }
}

impl ReliabilityConfig {
    /// The default policy with its jitter seed replaced.
    pub fn seeded(seed: u64) -> Self {
        ReliabilityConfig {
            jitter_seed: seed,
            ..ReliabilityConfig::default()
        }
    }

    /// Delay before retransmit `attempt` (1-based) of the leg keyed by
    /// `key` — `base · factor^(attempt-1)` capped at `max`, ± up to 25%
    /// deterministic jitter, never zero. Mirrors
    /// `BackoffPolicy::delay_ms` in the recovery layer.
    fn delay_ms(&self, attempt: u32, key: u64) -> u64 {
        let exp = u64::from(self.factor).saturating_pow(attempt.saturating_sub(1));
        let raw = self.base_ms.saturating_mul(exp).min(self.max_ms);
        let r = splitmix64(
            self.jitter_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(key)
                .wrapping_add(u64::from(attempt) << 32),
        );
        let span = raw / 2;
        let jitter = if span == 0 { 0 } else { r % (span + 1) };
        (raw - raw / 4 + jitter).max(1)
    }
}

/// One command against the network layer, accepted by every runtime via
/// [`Runtime::net_command`](crate::runtime::Runtime::net_command).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetCommand {
    /// Replaces the adversary's seed (decision stream).
    Seed(u64),
    /// Adds a legacy agent-scoped fault to the composable fault set
    /// (drops are total for matching legs).
    AddFault(TransportFault),
    /// Removes exactly that fault from the set; other windows stay open.
    RemoveFault(TransportFault),
    /// Clears the whole legacy fault set.
    ClearFaults,
    /// Opens a per-link fault window: the rule joins the active set
    /// (union semantics with other matching rules).
    AddLinkFaults(LinkSelector, LinkFaults),
    /// Closes every window opened under exactly this selector.
    ClearLinkFaults(LinkSelector),
    /// Opens (or replaces) a named partition: containers in different
    /// groups cannot exchange messages; containers in no group talk to
    /// everyone.
    OpenPartition(String, Vec<Vec<String>>),
    /// Heals the named partition.
    HealPartition(String),
    /// Enables the reliable-delivery layer with this policy.
    SetReliability(ReliabilityConfig),
}

/// Counters of the network layer, for reports and smoke checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Legs dropped by probabilistic loss (first attempts and
    /// retransmissions alike).
    pub dropped: u64,
    /// Legs held back by a delay rule.
    pub delayed: u64,
    /// Duplicate legs injected.
    pub duplicated: u64,
    /// Legs displaced by bounded reordering.
    pub reordered: u64,
    /// Legs blocked because sender and receiver containers sat in
    /// different partition groups.
    pub partition_dropped: u64,
    /// Retransmission attempts made by the reliability layer.
    pub retransmits: u64,
    /// Legs that reached their mailbox only thanks to a retransmission.
    pub delivered_after_retry: u64,
    /// Duplicate deliveries suppressed by the dedup window.
    pub dup_suppressed: u64,
    /// Legs abandoned because the retransmit buffer was full.
    pub retransmit_overflow: u64,
}

impl NetStats {
    /// Whether any counter moved (gates report sections).
    pub fn any(&self) -> bool {
        *self != NetStats::default()
    }
}

/// A leg waiting out its delay window. The leg is already "on the
/// wire": it re-enters at `due` without re-rolling drop or partition
/// checks (those applied when it was sent).
struct DelayedLeg {
    due: u64,
    message: SharedMessage,
    receiver: AgentId,
    link: u64,
    seq: u64,
}

/// A sender-side retransmit-buffer entry: an unacknowledged leg and
/// when to try it again.
struct PendingRetransmit {
    due: u64,
    message: SharedMessage,
    receiver: AgentId,
    link: u64,
    seq: u64,
    attempt: u32,
}

/// The adversary + reliability state machine. One per platform, driven
/// from the shared routing path; the threaded runtime keeps it behind a
/// mutex next to the routing table.
pub(crate) struct NetAdversary {
    seed: u64,
    rules: Vec<(LinkSelector, LinkFaults)>,
    partitions: BTreeMap<String, Vec<Vec<String>>>,
    reliability: Option<ReliabilityConfig>,
    /// Per-link monotone sequence counters (the "wire" seq numbers).
    seqs: BTreeMap<u64, u64>,
    /// Per-link dedup windows: sequence numbers already delivered.
    seen: BTreeMap<u64, BTreeSet<u64>>,
    delayed: Vec<DelayedLeg>,
    retransmit: Vec<PendingRetransmit>,
    /// Monotone counter decorrelating reorder permutations per batch.
    reorder_round: u64,
    stats: NetStats,
}

impl std::fmt::Debug for NetAdversary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetAdversary")
            .field("rules", &self.rules.len())
            .field("partitions", &self.partitions.len())
            .field("reliability", &self.reliability.is_some())
            .field("delayed", &self.delayed.len())
            .field("retransmit", &self.retransmit.len())
            .finish()
    }
}

const SALT_DROP: u64 = 0xd409;
const SALT_JITTER: u64 = 0x1a77;
const SALT_DUP: u64 = 0xd0b1;

impl NetAdversary {
    pub(crate) fn new(seed: u64) -> Self {
        NetAdversary {
            seed,
            rules: Vec::new(),
            partitions: BTreeMap::new(),
            reliability: None,
            seqs: BTreeMap::new(),
            seen: BTreeMap::new(),
            delayed: Vec::new(),
            retransmit: Vec::new(),
            reorder_round: 0,
            stats: NetStats::default(),
        }
    }

    /// Applies one command. The legacy fault-set commands
    /// (`AddFault`/`RemoveFault`/`ClearFaults`) are handled by the
    /// owning platform before the adversary sees anything.
    pub(crate) fn command(&mut self, command: NetCommand) {
        match command {
            NetCommand::Seed(seed) => self.seed = seed,
            NetCommand::AddLinkFaults(selector, faults) => self.rules.push((selector, faults)),
            NetCommand::ClearLinkFaults(selector) => {
                self.rules.retain(|(s, _)| s != &selector);
            }
            NetCommand::OpenPartition(name, groups) => {
                self.partitions.insert(name, groups);
            }
            NetCommand::HealPartition(name) => {
                self.partitions.remove(&name);
            }
            NetCommand::SetReliability(config) => self.reliability = Some(config),
            NetCommand::AddFault(_) | NetCommand::RemoveFault(_) | NetCommand::ClearFaults => {
                unreachable!("fault-set commands are handled by the platform")
            }
        }
    }

    pub(crate) fn stats(&self) -> NetStats {
        self.stats
    }

    /// Deterministic decision roll for `(link, seq, attempt, salt)`.
    fn roll(&self, link: u64, seq: u64, attempt: u32, salt: u64) -> u64 {
        splitmix64(
            self.seed
                ^ splitmix64(
                    link ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        ^ (u64::from(attempt) << 48)
                        ^ salt,
                ),
        )
    }

    /// Union of every rule matching the link (see module docs for the
    /// tie-breaking contract).
    fn effective(&self, sender: &AgentId, receiver: &AgentId) -> LinkFaults {
        let mut merged = LinkFaults::default();
        for (selector, faults) in &self.rules {
            if selector.matches(sender, receiver) {
                merged.merge(faults);
            }
        }
        merged
    }

    /// Whether any active partition separates the two containers.
    fn partition_blocks(&self, sender_ct: Option<&str>, receiver_ct: Option<&str>) -> bool {
        let (Some(s), Some(r)) = (sender_ct, receiver_ct) else {
            return false;
        };
        if s == r {
            return false;
        }
        for groups in self.partitions.values() {
            let side_of = |ct: &str| groups.iter().position(|g| g.iter().any(|c| c == ct));
            if let (Some(sg), Some(rg)) = (side_of(s), side_of(r)) {
                if sg != rg {
                    return true;
                }
            }
        }
        false
    }

    /// Dedup gate: whether this `(link, seq)` may reach its mailbox.
    /// Without reliability every leg passes (duplicates deliver twice);
    /// with it, the first sight of a sequence number passes and every
    /// later sight is suppressed.
    fn deliver_allowed(&mut self, link: u64, seq: u64) -> bool {
        let Some(config) = self.reliability else {
            return true;
        };
        let window = self.seen.entry(link).or_default();
        if !window.insert(seq) {
            self.stats.dup_suppressed += 1;
            return false;
        }
        while window.len() > config.dedup_window.max(1) {
            let oldest = *window.iter().next().expect("window is non-empty");
            window.remove(&oldest);
        }
        true
    }

    /// With reliability on, parks an undelivered leg for retransmission;
    /// without, the leg is gone (a lossy network loses messages).
    fn park_for_retransmit(
        &mut self,
        message: &SharedMessage,
        receiver: &AgentId,
        link: u64,
        seq: u64,
        now_ms: u64,
    ) {
        let Some(config) = self.reliability else {
            return;
        };
        if self.retransmit.len() >= config.retransmit_cap.max(1) {
            self.stats.retransmit_overflow += 1;
            return;
        }
        self.retransmit.push(PendingRetransmit {
            due: now_ms + config.delay_ms(1, link ^ seq),
            message: SharedMessage::clone(message),
            receiver: receiver.clone(),
            link,
            seq,
            attempt: 0,
        });
    }

    /// Runs one freshly-routed container batch through the adversary.
    /// Returns the legs that deliver now (possibly reordered and with
    /// duplicates appended); dropped legs are parked for retransmission
    /// or lost, delayed legs re-enter via [`due`](Self::due).
    ///
    /// `resolve` maps an agent to its current container (for the
    /// partition check on the *sender* side; `receiver_ct` is the batch's
    /// container). Legs whose sender has no container (external posts)
    /// are never partition-blocked.
    pub(crate) fn process_batch(
        &mut self,
        receiver_ct: &str,
        legs: ContainerBatch,
        mut resolve: impl FnMut(&AgentId) -> Option<String>,
        now_ms: u64,
        telemetry: Option<&Telemetry>,
    ) -> ContainerBatch {
        if self.rules.is_empty() && self.partitions.is_empty() && self.reliability.is_none() {
            return legs;
        }
        let mut out: ContainerBatch = Vec::new();
        let mut max_window = 1u32;
        for (message, receivers) in legs {
            let sender = message.sender().clone();
            let sender_ct = resolve(&sender);
            for receiver in receivers {
                let link = link_key(&sender, &receiver);
                let seq = {
                    let counter = self.seqs.entry(link).or_insert(0);
                    *counter += 1;
                    *counter
                };
                let faults = self.effective(&sender, &receiver);
                max_window = max_window.max(faults.reorder_window);
                if self.partition_blocks(sender_ct.as_deref(), Some(receiver_ct)) {
                    self.stats.partition_dropped += 1;
                    self.park_for_retransmit(&message, &receiver, link, seq, now_ms);
                    continue;
                }
                if faults.drop_ppm > 0
                    && self.roll(link, seq, 0, SALT_DROP) % 1_000_000 < u64::from(faults.drop_ppm)
                {
                    self.stats.dropped += 1;
                    self.park_for_retransmit(&message, &receiver, link, seq, now_ms);
                    continue;
                }
                if faults.delay_ms > 0 || faults.delay_jitter_ms > 0 {
                    let jitter = if faults.delay_jitter_ms == 0 {
                        0
                    } else {
                        self.roll(link, seq, 0, SALT_JITTER) % (faults.delay_jitter_ms + 1)
                    };
                    let hold = faults.delay_ms + jitter;
                    if hold > 0 {
                        self.stats.delayed += 1;
                        if let Some(t) = telemetry {
                            t.record_event(
                                now_ms,
                                EventKind::Delayed {
                                    link: link_label(&sender, &receiver),
                                    ms: hold,
                                },
                            );
                        }
                        self.delayed.push(DelayedLeg {
                            due: now_ms + hold,
                            message: SharedMessage::clone(&message),
                            receiver,
                            link,
                            seq,
                        });
                        continue;
                    }
                }
                let duplicated = faults.duplicate_ppm > 0
                    && self.roll(link, seq, 0, SALT_DUP) % 1_000_000
                        < u64::from(faults.duplicate_ppm);
                if self.deliver_allowed(link, seq) {
                    out.push((SharedMessage::clone(&message), vec![receiver.clone()]));
                }
                if duplicated {
                    self.stats.duplicated += 1;
                    if let Some(t) = telemetry {
                        t.record_event(
                            now_ms,
                            EventKind::Duplicated {
                                link: link_label(&sender, &receiver),
                            },
                        );
                    }
                    if self.deliver_allowed(link, seq) {
                        out.push((SharedMessage::clone(&message), vec![receiver]));
                    }
                }
            }
        }
        if max_window >= 2 && out.len() >= 2 {
            out = self.reorder(out, max_window as usize);
        }
        out
    }

    /// Bounded deterministic reordering: the batch is permuted within
    /// windows of `window` entries, keyed off the seed and a monotone
    /// round counter — a leg moves at most `window - 1` positions. This
    /// deliberately violates per-link FIFO inside the window (that is
    /// the fault being injected); the dedup window keeps exactly-once
    /// delivery intact when reliability is on.
    fn reorder(&mut self, batch: ContainerBatch, window: usize) -> ContainerBatch {
        self.reorder_round += 1;
        let round = self.reorder_round;
        let mut out: ContainerBatch = Vec::with_capacity(batch.len());
        let mut chunk: ContainerBatch = Vec::with_capacity(window);
        let mut chunk_idx = 0u64;
        let mut flush = |chunk: &mut ContainerBatch, chunk_idx: u64, stats: &mut NetStats| {
            if chunk.len() > 1 {
                let mut order: Vec<usize> = (0..chunk.len()).collect();
                order.sort_by_key(|i| {
                    splitmix64(
                        self.seed ^ round.wrapping_mul(0x9e37_79b9) ^ (chunk_idx << 32) ^ *i as u64,
                    )
                });
                stats.reordered += order
                    .iter()
                    .enumerate()
                    .filter(|(at, from)| at != *from)
                    .count() as u64;
                let mut slots: Vec<Option<(SharedMessage, Vec<AgentId>)>> =
                    chunk.drain(..).map(Some).collect();
                for from in order {
                    out.push(slots[from].take().expect("each slot is taken once"));
                }
            } else {
                out.append(chunk);
            }
        };
        let mut stats = std::mem::take(&mut self.stats);
        for leg in batch {
            chunk.push(leg);
            if chunk.len() == window {
                flush(&mut chunk, chunk_idx, &mut stats);
                chunk_idx += 1;
            }
        }
        flush(&mut chunk, chunk_idx, &mut stats);
        self.stats = stats;
        out
    }

    /// Drains every delayed and retransmit leg due at `now_ms`, in
    /// insertion order. Returned legs already passed the dedup window
    /// and any partition/drop re-checks; retransmissions that are still
    /// blocked re-park themselves with the next backoff step. Callers
    /// deliver the returned legs directly (re-resolving the receiver —
    /// it may have died while the leg waited).
    pub(crate) fn due(
        &mut self,
        now_ms: u64,
        mut resolve: impl FnMut(&AgentId) -> Option<String>,
        telemetry: Option<&Telemetry>,
    ) -> Vec<(SharedMessage, AgentId)> {
        if self.delayed.is_empty() && self.retransmit.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut waiting = Vec::new();
        for leg in std::mem::take(&mut self.delayed) {
            if leg.due > now_ms {
                waiting.push(leg);
            } else if self.deliver_allowed(leg.link, leg.seq) {
                out.push((leg.message, leg.receiver));
            }
        }
        self.delayed = waiting;

        let mut parked = Vec::new();
        for mut entry in std::mem::take(&mut self.retransmit) {
            if entry.due > now_ms {
                parked.push(entry);
                continue;
            }
            entry.attempt += 1;
            self.stats.retransmits += 1;
            if let Some(t) = telemetry {
                t.record_event(
                    now_ms,
                    EventKind::Retransmit {
                        link: link_label(entry.message.sender(), &entry.receiver),
                        attempt: entry.attempt,
                    },
                );
            }
            let sender_ct = resolve(entry.message.sender());
            let receiver_ct = resolve(&entry.receiver);
            let blocked = self.partition_blocks(sender_ct.as_deref(), receiver_ct.as_deref());
            let faults = self.effective(entry.message.sender(), &entry.receiver);
            let dropped = !blocked
                && faults.drop_ppm > 0
                && self.roll(entry.link, entry.seq, entry.attempt, SALT_DROP) % 1_000_000
                    < u64::from(faults.drop_ppm);
            if blocked || dropped {
                if blocked {
                    self.stats.partition_dropped += 1;
                } else {
                    self.stats.dropped += 1;
                }
                let config = self
                    .reliability
                    .expect("retransmit entries imply reliability");
                entry.due = now_ms + config.delay_ms(entry.attempt + 1, entry.link ^ entry.seq);
                parked.push(entry);
                continue;
            }
            self.stats.delivered_after_retry += 1;
            if self.deliver_allowed(entry.link, entry.seq) {
                out.push((entry.message, entry.receiver));
            }
        }
        self.retransmit = parked;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::{AclMessage, Performative};

    fn msg(sender: &str, receiver: &str) -> SharedMessage {
        AclMessage::builder(Performative::Inform)
            .sender(AgentId::new(sender))
            .receiver(AgentId::new(receiver))
            .build()
            .unwrap()
            .into_shared()
    }

    fn leg(sender: &str, receiver: &str) -> (SharedMessage, Vec<AgentId>) {
        (msg(sender, receiver), vec![AgentId::new(receiver)])
    }

    fn resolve_all(_: &AgentId) -> Option<String> {
        Some("ct".to_owned())
    }

    #[test]
    fn benign_adversary_passes_batches_through() {
        let mut net = NetAdversary::new(7);
        let batch = vec![leg("a@x", "b@x")];
        let out = net.process_batch("ct", batch, resolve_all, 0, None);
        assert_eq!(out.len(), 1);
        assert!(!net.stats().any());
    }

    #[test]
    fn certain_drop_loses_the_leg_without_reliability() {
        let mut net = NetAdversary::new(7);
        net.command(NetCommand::AddLinkFaults(
            LinkSelector::All,
            LinkFaults {
                drop_ppm: 1_000_000,
                ..LinkFaults::default()
            },
        ));
        let out = net.process_batch("ct", vec![leg("a@x", "b@x")], resolve_all, 0, None);
        assert!(out.is_empty());
        assert_eq!(net.stats().dropped, 1);
        assert!(
            net.due(10_000, resolve_all, None).is_empty(),
            "no retransmit"
        );
    }

    #[test]
    fn reliability_retransmits_until_the_window_closes() {
        let mut net = NetAdversary::new(7);
        net.command(NetCommand::SetReliability(ReliabilityConfig::seeded(7)));
        net.command(NetCommand::AddLinkFaults(
            LinkSelector::All,
            LinkFaults {
                drop_ppm: 1_000_000,
                ..LinkFaults::default()
            },
        ));
        let out = net.process_batch("ct", vec![leg("a@x", "b@x")], resolve_all, 0, None);
        assert!(out.is_empty());
        // While the window is open every due retransmission re-drops.
        let mut now = 0;
        for _ in 0..3 {
            now += 120_000;
            assert!(net.due(now, resolve_all, None).is_empty());
        }
        assert!(net.stats().retransmits >= 3);
        // Close the window: the next retransmission delivers, exactly once.
        net.command(NetCommand::ClearLinkFaults(LinkSelector::All));
        let delivered = net.due(now + 120_000, resolve_all, None);
        assert_eq!(delivered.len(), 1);
        assert_eq!(net.stats().delivered_after_retry, 1);
        assert!(net.due(now + 240_000, resolve_all, None).is_empty());
    }

    #[test]
    fn duplicates_are_suppressed_only_with_reliability() {
        let dup = LinkFaults {
            duplicate_ppm: 1_000_000,
            ..LinkFaults::default()
        };
        let mut lossy = NetAdversary::new(3);
        lossy.command(NetCommand::AddLinkFaults(LinkSelector::All, dup));
        let out = lossy.process_batch("ct", vec![leg("a@x", "b@x")], resolve_all, 0, None);
        assert_eq!(out.len(), 2, "without reliability the duplicate delivers");
        assert_eq!(lossy.stats().duplicated, 1);

        let mut reliable = NetAdversary::new(3);
        reliable.command(NetCommand::AddLinkFaults(LinkSelector::All, dup));
        reliable.command(NetCommand::SetReliability(ReliabilityConfig::seeded(3)));
        let out = reliable.process_batch("ct", vec![leg("a@x", "b@x")], resolve_all, 0, None);
        assert_eq!(out.len(), 1, "the dedup window suppresses the duplicate");
        assert_eq!(reliable.stats().dup_suppressed, 1);
    }

    #[test]
    fn delayed_legs_re_enter_on_the_clock() {
        let mut net = NetAdversary::new(5);
        net.command(NetCommand::AddLinkFaults(
            LinkSelector::All,
            LinkFaults {
                delay_ms: 1_000,
                delay_jitter_ms: 500,
                ..LinkFaults::default()
            },
        ));
        let out = net.process_batch("ct", vec![leg("a@x", "b@x")], resolve_all, 0, None);
        assert!(out.is_empty());
        assert_eq!(net.stats().delayed, 1);
        assert!(net.due(999, resolve_all, None).is_empty(), "not due yet");
        let due = net.due(1_500, resolve_all, None);
        assert_eq!(due.len(), 1);
    }

    #[test]
    fn partitions_block_across_groups_only() {
        let mut net = NetAdversary::new(1);
        net.command(NetCommand::OpenPartition(
            "island".into(),
            vec![vec!["pg-1".into()], vec!["pg-2".into()]],
        ));
        let resolve = |a: &AgentId| {
            Some(if a.name().contains("one") {
                "pg-1".to_owned()
            } else {
                "pg-2".to_owned()
            })
        };
        // Cross-group: blocked. Same group: fine. Unlisted container: fine.
        let out = net.process_batch("pg-2", vec![leg("one@x", "two@x")], resolve, 0, None);
        assert!(out.is_empty());
        assert_eq!(net.stats().partition_dropped, 1);
        let out = net.process_batch("pg-2", vec![leg("two@x", "other-two@x")], resolve, 0, None);
        assert_eq!(out.len(), 1);
        let out = net.process_batch(
            "cg-hq",
            vec![leg("one@x", "collector@x")],
            |a: &AgentId| {
                Some(if a.name().contains("one") {
                    "pg-1".to_owned()
                } else {
                    "cg-hq".to_owned()
                })
            },
            0,
            None,
        );
        assert_eq!(out.len(), 1, "containers outside every group talk to all");
        // Heal: cross-group traffic flows again.
        net.command(NetCommand::HealPartition("island".into()));
        let out = net.process_batch("pg-2", vec![leg("one@x", "two@x")], resolve, 0, None);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn partitioned_legs_deliver_after_heal_with_reliability() {
        let mut net = NetAdversary::new(1);
        net.command(NetCommand::SetReliability(ReliabilityConfig::seeded(1)));
        net.command(NetCommand::OpenPartition(
            "island".into(),
            vec![vec!["pg-1".into()], vec!["rest".into()]],
        ));
        let resolve = |a: &AgentId| {
            Some(if a.name() == "one@x" {
                "pg-1".to_owned()
            } else {
                "rest".to_owned()
            })
        };
        let out = net.process_batch("rest", vec![leg("one@x", "two@x")], resolve, 0, None);
        assert!(out.is_empty());
        assert!(
            net.due(60_000, resolve, None).is_empty(),
            "still partitioned"
        );
        net.command(NetCommand::HealPartition("island".into()));
        let healed = net.due(240_000, resolve, None);
        assert_eq!(healed.len(), 1, "the parked leg crosses after the heal");
        assert_eq!(healed[0].1, AgentId::new("two@x"));
    }

    #[test]
    fn reordering_is_bounded_and_deterministic() {
        let build = || {
            let mut net = NetAdversary::new(11);
            net.command(NetCommand::AddLinkFaults(
                LinkSelector::All,
                LinkFaults {
                    reorder_window: 4,
                    ..LinkFaults::default()
                },
            ));
            net
        };
        let batch =
            || -> ContainerBatch { (0..8).map(|i| leg(&format!("s{i}@x"), "r@x")).collect() };
        let mut a = build();
        let out_a = a.process_batch("ct", batch(), resolve_all, 0, None);
        let mut b = build();
        let out_b = b.process_batch("ct", batch(), resolve_all, 0, None);
        assert_eq!(out_a.len(), 8);
        let senders = |batch: &ContainerBatch| -> Vec<String> {
            batch
                .iter()
                .map(|(m, _)| m.sender().name().to_owned())
                .collect()
        };
        assert_eq!(
            senders(&out_a),
            senders(&out_b),
            "same seed, same permutation"
        );
        // Bounded: an entry never leaves its window of 4.
        for (at, (m, _)) in out_a.iter().enumerate() {
            let from: usize = m.sender().name()[1..2].parse().unwrap();
            assert_eq!(at / 4, from / 4, "leg {from} escaped its window");
        }
        assert!(a.stats().reordered > 0, "seed 11 permutes something");
    }

    #[test]
    fn fault_windows_compose_and_clear_by_selector() {
        let mut net = NetAdversary::new(2);
        let to = LinkSelector::To(AgentId::new("b@x"));
        net.command(NetCommand::AddLinkFaults(
            LinkSelector::All,
            LinkFaults {
                drop_ppm: 600_000,
                ..LinkFaults::default()
            },
        ));
        net.command(NetCommand::AddLinkFaults(
            to.clone(),
            LinkFaults {
                drop_ppm: 600_000,
                delay_ms: 250,
                ..LinkFaults::default()
            },
        ));
        let merged = net.effective(&AgentId::new("a@x"), &AgentId::new("b@x"));
        assert_eq!(merged.drop_ppm, 1_000_000, "probabilities add, capped");
        assert_eq!(merged.delay_ms, 250);
        // Scoped clear: only the To window closes.
        net.command(NetCommand::ClearLinkFaults(to));
        let merged = net.effective(&AgentId::new("a@x"), &AgentId::new("b@x"));
        assert_eq!(merged.drop_ppm, 600_000);
        assert_eq!(merged.delay_ms, 0);
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_link_and_seq() {
        let run = |seed: u64| {
            let mut net = NetAdversary::new(seed);
            net.command(NetCommand::AddLinkFaults(
                LinkSelector::All,
                LinkFaults {
                    drop_ppm: 400_000,
                    ..LinkFaults::default()
                },
            ));
            let batch: ContainerBatch = (0..32).map(|i| leg("s@x", &format!("r{i}@x"))).collect();
            let out = net.process_batch("ct", batch, resolve_all, 0, None);
            out.iter()
                .map(|(_, r)| r[0].name().to_owned())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9), "same seed, same survivors");
        assert_ne!(run(9), run(10), "different seed, different survivors");
    }

    #[test]
    fn retransmit_buffer_is_bounded() {
        let mut net = NetAdversary::new(4);
        net.command(NetCommand::SetReliability(ReliabilityConfig {
            retransmit_cap: 2,
            ..ReliabilityConfig::seeded(4)
        }));
        net.command(NetCommand::AddLinkFaults(
            LinkSelector::All,
            LinkFaults {
                drop_ppm: 1_000_000,
                ..LinkFaults::default()
            },
        ));
        let batch: ContainerBatch = (0..5).map(|i| leg("s@x", &format!("r{i}@x"))).collect();
        let out = net.process_batch("ct", batch, resolve_all, 0, None);
        assert!(out.is_empty());
        assert_eq!(net.stats().retransmit_overflow, 3);
    }
}
