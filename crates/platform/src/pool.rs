//! Work-stealing pool runtime: deterministic results, parallel ticks.
//!
//! [`PoolRuntime`] wraps the deterministic [`Platform`] and replaces only
//! its **tick phase**. Routing (batch grouping, overload admission,
//! dead-lettering, requeue — see [`crate::delivery`]) still runs on the
//! driving thread exactly as on the stepper; what changes is who executes
//! `on_message`/`on_tick`:
//!
//! * containers hinted via [`Runtime::hint_parallel`] become jobs on a
//!   work-stealing pool (crossbeam deques — a fixed set of scoped worker
//!   threads per phase, no async runtime). Idle workers steal **whole
//!   container batches** from their siblings, so a site whose collectors
//!   finish early helps drain a slow one;
//! * containers hinted via [`Runtime::hint_parallel_group`] become one
//!   job **per group**: the group's members tick in container-name order
//!   inside the job — the same relative order the stepper gives them —
//!   so containers that depend on each other (a federated shard's root,
//!   classifier and analyzers trading load and liveness state through
//!   the directory) still parallelize as a unit against other groups;
//! * every other container — the cluster entangled through the shared
//!   directory and any cross-agent stores — ticks sequentially in name
//!   order on the driving thread, concurrently with the workers.
//!
//! During a parallel phase the directory sits behind a lock that agent
//! contexts take **lazily** ([`crate::AgentCtx::df`]): a collector that
//! never consults the directory runs the whole phase without touching
//! it. Each job collects its sends into a private outbox; when the phase
//! ends, outboxes merge into the in-flight queue in **container-name
//! order** — the same order the sequential stepper produces. A hinted
//! container must therefore be *independent*: its agents' behaviour may
//! not depend on ordering relative to other containers within one tick
//! (the grid's collectors qualify — their polls are read-only against the
//! device network). Under that contract the pool's observable outcome —
//! delivery totals, dead letters, report contents — is byte-identical to
//! the deterministic [`Platform`]'s, which `tests/architecture_comparison`
//! asserts.
//!
//! Zero-copy delivery is unchanged: fan-out and batch flushes bump the
//! [`SharedMessage`] refcount, never cloning message content. Liveness
//! (heartbeats, staleness sweeps) and circuit-breaker logic live in agent
//! code and the directory, so they run under the pool unmodified.
//!
//! # Examples
//!
//! ```
//! use agentgrid_platform::pool::PoolRuntime;
//! use agentgrid_platform::runtime::Runtime;
//! use agentgrid_platform::Agent;
//!
//! struct Noop;
//! impl Agent for Noop {}
//!
//! let mut rt = PoolRuntime::create("grid");
//! rt.add_container("cg-hq");
//! rt.hint_parallel("cg-hq"); // collectors: independent, pool-eligible
//! rt.add_container("pg-root-ct"); // root: shared state, stays sequential
//! rt.spawn_agent("cg-hq", "collector", Noop).unwrap();
//! rt.run_until_idle(0);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use agentgrid_acl::{AgentId, SharedMessage};
use agentgrid_telemetry::TelemetryHandle;
use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::Mutex;

use crate::agent::Agent;
use crate::container::{Container, DfRef};
use crate::net::{NetCommand, NetStats};
use crate::overload::{MailboxConfig, OverloadStats, PressureSignal};
use crate::runtime::Runtime;
use crate::{DirectoryFacilitator, Platform, PlatformError, TransportFault};

/// One container's share of a pool job: taken out of the platform for
/// the duration of a tick phase, with its private outbox so the merge
/// stays in global container-name order.
struct Unit {
    name: String,
    container: Container,
    outbox: Vec<SharedMessage>,
}

/// One unit of pool work: a single hinted container, or a whole hinted
/// group whose members tick in container-name order on one worker.
struct Job {
    label: String,
    units: Vec<Unit>,
}

/// The work-stealing runtime. See the [module docs](self).
pub struct PoolRuntime {
    inner: Platform,
    /// Containers declared independent (pool-eligible) via
    /// [`Runtime::hint_parallel`]. Names may be hinted before their
    /// containers exist; unknown names are simply never scheduled.
    parallel: BTreeSet<String>,
    /// Named groups of mutually-dependent containers declared via
    /// [`Runtime::hint_parallel_group`]; each group runs as one job.
    groups: BTreeMap<String, BTreeSet<String>>,
    workers: usize,
}

impl std::fmt::Debug for PoolRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolRuntime")
            .field("parallel", &self.parallel.len())
            .field("workers", &self.workers)
            .finish()
    }
}

impl PoolRuntime {
    /// Creates a pool runtime with a worker count derived from the
    /// machine (`available_parallelism - 1`, clamped to `1..=8`).
    pub fn new(name: impl Into<String>) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .saturating_sub(1)
            .clamp(1, 8);
        PoolRuntime::with_workers(name, workers)
    }

    /// Creates a pool runtime with an explicit worker count (min 1).
    pub fn with_workers(name: impl Into<String>, workers: usize) -> Self {
        PoolRuntime {
            inner: Platform::new(name),
            parallel: BTreeSet::new(),
            groups: BTreeMap::new(),
            workers: workers.max(1),
        }
    }

    /// Worker threads used per parallel phase.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Read access to the wrapped deterministic platform (containers,
    /// directory, dead letters).
    pub fn platform(&self) -> &Platform {
        &self.inner
    }

    /// Write access to the wrapped platform, for wiring that the
    /// [`Runtime`] surface does not cover (suspend/resume, migration).
    pub fn platform_mut(&mut self) -> &mut Platform {
        &mut self.inner
    }

    /// Runs one step at simulated time `now_ms`: the platform's batch
    /// routing phase, then hinted containers on the worker pool while
    /// the shared-state cluster ticks in name order on this thread.
    /// Returns the number of messages routed.
    ///
    /// When the attached telemetry's [`PoolProfiler`] is enabled
    /// (`agentgrid_telemetry::PoolProfiler::enable`), the step records
    /// wall-clock route/tick/merge phase slices and one slice per
    /// executed job (with its worker lane and whether it was stolen);
    /// disabled — the default — the only cost is one atomic load.
    pub fn step(&mut self, now_ms: u64) -> usize {
        let telemetry = self.inner.telemetry.clone();
        let telemetry = telemetry.as_deref();
        let profiler = telemetry
            .map(|t| t.pool_profiler())
            .filter(|p| p.is_enabled());

        let route_start = profiler.map(|p| p.now_us());
        let routed = self.inner.pre_tick(now_ms);
        if let (Some(profiler), Some(start)) = (profiler, route_start) {
            profiler.record_phase("route", start);
        }

        // Pull the hinted containers out of the platform for this phase:
        // singles first, then whole groups (sorted member order — the
        // same relative order the stepper's global name order gives the
        // group's containers).
        let mut jobs: Vec<Job> = Vec::new();
        for name in &self.parallel {
            if let Some(container) = self.inner.containers.remove(name) {
                jobs.push(Job {
                    label: name.clone(),
                    units: vec![Unit {
                        name: name.clone(),
                        container,
                        outbox: Vec::new(),
                    }],
                });
            }
        }
        for (group, members) in &self.groups {
            let units: Vec<Unit> = members
                .iter()
                .filter_map(|name| {
                    self.inner.containers.remove(name).map(|container| Unit {
                        name: name.clone(),
                        container,
                        outbox: Vec::new(),
                    })
                })
                .collect();
            if !units.is_empty() {
                jobs.push(Job {
                    label: group.clone(),
                    units,
                });
            }
        }
        // The directory moves behind a lock for the phase; contexts take
        // it lazily, so agents that never consult it stay lock-free.
        let df = Mutex::new(std::mem::take(&mut self.inner.df));
        let worker_count = self.workers.min(jobs.len());
        let finished: Mutex<Vec<Job>> = Mutex::new(Vec::with_capacity(jobs.len()));
        // Per-container outboxes, merged in name order below.
        let mut outboxes: BTreeMap<String, Vec<SharedMessage>> = BTreeMap::new();

        let locals: Vec<Worker<Job>> = (0..worker_count).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<Job>> = locals.iter().map(Worker::stealer).collect();
        // Seed round-robin; imbalances even out by stealing.
        for (i, job) in jobs.into_iter().enumerate() {
            locals[i % worker_count].push(job);
        }
        let tick_start = profiler.map(|p| p.now_us());
        std::thread::scope(|scope| {
            for (me, local) in locals.into_iter().enumerate() {
                let stealers = &stealers;
                let finished = &finished;
                let df = &df;
                scope.spawn(move || {
                    while let Some((mut job, stolen)) = next_job(&local, stealers, me) {
                        let job_start = profiler.map(|p| p.now_us());
                        for unit in &mut job.units {
                            let mut df_ref = DfRef::Shared(df);
                            unit.container.tick_agents(
                                &unit.name,
                                now_ms,
                                &mut unit.outbox,
                                &mut df_ref,
                                telemetry,
                            );
                        }
                        if let (Some(profiler), Some(start)) = (profiler, job_start) {
                            profiler.record_job(me, &job.label, start, stolen);
                        }
                        finished.lock().push(job);
                    }
                });
            }
            // Meanwhile the shared-state cluster ticks sequentially in
            // name order on this thread, exactly like the stepper.
            for (name, container) in self.inner.containers.iter_mut() {
                let mut outbox = Vec::new();
                let mut df_ref = DfRef::Shared(&df);
                container.tick_agents(name, now_ms, &mut outbox, &mut df_ref, telemetry);
                outboxes.insert(name.clone(), outbox);
            }
        });
        if let (Some(profiler), Some(start)) = (profiler, tick_start) {
            profiler.record_phase("tick", start);
        }

        let merge_start = profiler.map(|p| p.now_us());
        self.inner.df = df.into_inner();
        for job in finished.into_inner() {
            for unit in job.units {
                let Unit {
                    name,
                    container,
                    outbox,
                } = unit;
                outboxes.insert(name.clone(), outbox);
                self.inner.containers.insert(name, container);
            }
        }
        for outbox in outboxes.into_values() {
            self.inner.in_flight.extend(outbox);
        }
        if let (Some(profiler), Some(start)) = (profiler, merge_start) {
            profiler.record_phase("merge", start);
        }
        routed
    }

    /// Steps repeatedly at the same timestamp until no messages are in
    /// flight, mirroring [`Platform::run_until_idle`] (same 10 000-step
    /// runaway safety net). Returns the number of steps taken.
    pub fn run_until_idle(&mut self, now_ms: u64) -> usize {
        let mut steps = 0;
        loop {
            steps += 1;
            self.step(now_ms);
            if self.inner.in_flight.is_empty() || steps >= 10_000 {
                return steps;
            }
        }
    }
}

/// Pops the local deque first, then steals batches from siblings. `None`
/// only once every deque is empty — no jobs are injected mid-phase, so
/// that is a stable termination condition.
fn next_job(local: &Worker<Job>, stealers: &[Stealer<Job>], me: usize) -> Option<(Job, bool)> {
    if let Some(job) = local.pop() {
        return Some((job, false));
    }
    loop {
        let mut retry = false;
        for (i, stealer) in stealers.iter().enumerate() {
            if i == me {
                continue;
            }
            match stealer.steal_batch_and_pop(local) {
                Steal::Success(job) => return Some((job, true)),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

impl Runtime for PoolRuntime {
    fn create(name: &str) -> Self {
        PoolRuntime::new(name)
    }

    fn add_container(&mut self, name: &str) {
        self.inner.add_container(name);
    }

    fn spawn_agent(
        &mut self,
        container: &str,
        local_name: &str,
        agent: impl Agent + 'static,
    ) -> Result<AgentId, PlatformError> {
        self.inner.spawn(container, local_name, agent)
    }

    fn with_df<T>(&mut self, f: impl FnOnce(&mut DirectoryFacilitator) -> T) -> T {
        f(self.inner.df_mut())
    }

    fn post(&mut self, message: impl Into<SharedMessage>) {
        self.inner.post(message);
    }

    fn run_until_idle(&mut self, now_ms: u64) -> usize {
        PoolRuntime::run_until_idle(self, now_ms)
    }

    fn delivered_count(&self) -> u64 {
        self.inner.delivered_count()
    }

    fn dead_letter_count(&self) -> usize {
        self.inner.dead_letter_count()
    }

    fn container_count(&self) -> usize {
        self.inner.container_names().count()
    }

    fn kill_container(&mut self, name: &str) -> Result<Vec<AgentId>, PlatformError> {
        self.inner.kill_container(name)
    }

    fn crash_container_silent(&mut self, name: &str) -> Result<Vec<AgentId>, PlatformError> {
        self.inner.crash_container_silent(name)
    }

    fn set_transport_fault(&mut self, fault: TransportFault) {
        self.inner.set_fault(fault);
    }

    fn set_dead_letter_requeue(&mut self, enabled: bool) {
        self.inner.set_dead_letter_requeue(enabled);
    }

    fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.inner.set_telemetry(telemetry);
    }

    fn telemetry(&self) -> Option<TelemetryHandle> {
        self.inner.telemetry()
    }

    fn set_overload(&mut self, config: MailboxConfig, pressure: Option<Arc<PressureSignal>>) {
        self.inner.set_overload(config, pressure);
    }

    fn overload_stats(&self) -> Option<OverloadStats> {
        self.inner.overload_stats()
    }

    fn hint_parallel(&mut self, container: &str) {
        self.parallel.insert(container.to_owned());
    }

    fn hint_parallel_group(&mut self, group: &str, container: &str) {
        self.groups
            .entry(group.to_owned())
            .or_default()
            .insert(container.to_owned());
    }

    fn net_command(&mut self, command: NetCommand) {
        self.inner.net_command(command);
    }

    fn net_stats(&self) -> Option<NetStats> {
        self.inner.net_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AgentCtx;
    use agentgrid_acl::{AclMessage, Performative, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Replies `pong` to every `ping`; counts what it hears.
    struct Ponger {
        hits: Arc<AtomicUsize>,
    }

    impl Agent for Ponger {
        fn on_message(&mut self, message: &AclMessage, ctx: &mut AgentCtx<'_>) {
            self.hits.fetch_add(1, Ordering::SeqCst);
            if message.content() == &Value::symbol("ping") {
                ctx.send(message.reply(Performative::Inform, Value::symbol("pong")));
            }
        }
    }

    /// Sends one message to `target` on every tick, up to `limit`.
    struct TickSender {
        target: AgentId,
        sent: usize,
        limit: usize,
    }

    impl Agent for TickSender {
        fn on_tick(&mut self, ctx: &mut AgentCtx<'_>) {
            if self.sent >= self.limit {
                return;
            }
            self.sent += 1;
            let msg = AclMessage::builder(Performative::Inform)
                .sender(ctx.self_id().clone())
                .receiver(self.target.clone())
                .content(Value::symbol("tick"))
                .build()
                .unwrap();
            ctx.send(msg);
        }
    }

    fn ping(from: &str, to: &AgentId) -> AclMessage {
        AclMessage::builder(Performative::Request)
            .sender(AgentId::new(from))
            .receiver(to.clone())
            .content(Value::symbol("ping"))
            .build()
            .unwrap()
    }

    #[test]
    fn pool_matches_deterministic_platform_exactly() {
        // The same fan-in scenario on both runtimes: N hinted sender
        // containers feeding one sequential sink.
        fn run<R: Runtime>(hits: &Arc<AtomicUsize>) -> (u64, usize) {
            let mut rt = R::create("grid");
            rt.add_container("sink-ct");
            let sink = rt
                .spawn_agent(
                    "sink-ct",
                    "sink",
                    Ponger {
                        hits: Arc::clone(hits),
                    },
                )
                .unwrap();
            for i in 0..16 {
                let name = format!("cg-{i:02}");
                rt.add_container(&name);
                rt.hint_parallel(&name);
                rt.spawn_agent(
                    &name,
                    &format!("sender-{i:02}"),
                    TickSender {
                        target: sink.clone(),
                        sent: 0,
                        limit: 3,
                    },
                )
                .unwrap();
            }
            for t in 0..4 {
                rt.run_until_idle(t * 1_000);
            }
            (rt.delivered_count(), rt.dead_letter_count())
        }
        let hits = Arc::new(AtomicUsize::new(0));
        let sequential = run::<Platform>(&hits);
        let seq_hits = hits.swap(0, Ordering::SeqCst);
        let pooled = run::<PoolRuntime>(&hits);
        let pool_hits = hits.load(Ordering::SeqCst);
        assert_eq!(sequential, pooled);
        assert_eq!(seq_hits, pool_hits);
        assert_eq!(seq_hits, 48, "16 senders x 3 ticks each");
    }

    #[test]
    fn grouped_containers_match_the_platform() {
        // Four two-container groups; traffic stays inside each group,
        // mimicking federated shards. The pool must agree with the
        // stepper on every observable count.
        fn run<R: Runtime>(hits: &Arc<AtomicUsize>) -> (u64, usize) {
            let mut rt = R::create("grid");
            for g in 0..4 {
                let sink_ct = format!("shard{g}-sink-ct");
                let send_ct = format!("shard{g}-send-ct");
                rt.add_container(&sink_ct);
                rt.add_container(&send_ct);
                let group = format!("shard-{g}");
                rt.hint_parallel_group(&group, &sink_ct);
                rt.hint_parallel_group(&group, &send_ct);
                let sink = rt
                    .spawn_agent(
                        &sink_ct,
                        &format!("sink-{g}"),
                        Ponger {
                            hits: Arc::clone(hits),
                        },
                    )
                    .unwrap();
                rt.spawn_agent(
                    &send_ct,
                    &format!("send-{g}"),
                    TickSender {
                        target: sink,
                        sent: 0,
                        limit: 2,
                    },
                )
                .unwrap();
            }
            for t in 0..3 {
                rt.run_until_idle(t * 1_000);
            }
            (rt.delivered_count(), rt.dead_letter_count())
        }
        let hits = Arc::new(AtomicUsize::new(0));
        let sequential = run::<Platform>(&hits);
        let seq_hits = hits.swap(0, Ordering::SeqCst);
        let pooled = run::<PoolRuntime>(&hits);
        let pool_hits = hits.load(Ordering::SeqCst);
        assert_eq!(sequential, pooled);
        assert_eq!(seq_hits, pool_hits);
        assert_eq!(seq_hits, 8, "4 shards x 2 sends each");
    }

    #[test]
    fn workers_steal_across_many_hinted_containers() {
        // More containers than workers forces stealing; every sender
        // must still run exactly once per step.
        let hits = Arc::new(AtomicUsize::new(0));
        let mut rt = PoolRuntime::with_workers("grid", 3);
        rt.add_container("sink-ct");
        let sink = rt
            .spawn_agent(
                "sink-ct",
                "sink",
                Ponger {
                    hits: Arc::clone(&hits),
                },
            )
            .unwrap();
        for i in 0..64 {
            let name = format!("cg-{i:03}");
            rt.add_container(&name);
            rt.hint_parallel(&name);
            rt.spawn_agent(
                &name,
                &format!("s-{i:03}"),
                TickSender {
                    target: sink.clone(),
                    sent: 0,
                    limit: 1,
                },
            )
            .unwrap();
        }
        rt.run_until_idle(0);
        assert_eq!(hits.load(Ordering::SeqCst), 64);
        assert_eq!(rt.delivered_count(), 64);
    }

    #[test]
    fn per_sender_receiver_order_is_preserved_under_the_pool() {
        use parking_lot::Mutex as PlMutex;

        struct Recorder {
            seen: Arc<PlMutex<Vec<String>>>,
        }
        impl Agent for Recorder {
            fn on_message(&mut self, message: &AclMessage, _ctx: &mut AgentCtx<'_>) {
                if let Value::Symbol(s) = message.content() {
                    self.seen.lock().push(s.clone());
                }
            }
        }
        struct Burst {
            target: AgentId,
            fired: bool,
        }
        impl Agent for Burst {
            fn on_tick(&mut self, ctx: &mut AgentCtx<'_>) {
                if self.fired {
                    return;
                }
                self.fired = true;
                for n in 0..8 {
                    let msg = AclMessage::builder(Performative::Inform)
                        .sender(ctx.self_id().clone())
                        .receiver(self.target.clone())
                        .content(Value::symbol(format!("m{n}")))
                        .build()
                        .unwrap();
                    ctx.send(msg);
                }
            }
        }

        let seen = Arc::new(PlMutex::new(Vec::new()));
        let mut rt = PoolRuntime::with_workers("grid", 4);
        rt.add_container("sink-ct");
        let sink = rt
            .spawn_agent(
                "sink-ct",
                "sink",
                Recorder {
                    seen: Arc::clone(&seen),
                },
            )
            .unwrap();
        rt.add_container("cg-a");
        rt.hint_parallel("cg-a");
        rt.spawn_agent(
            "cg-a",
            "burst",
            Burst {
                target: sink,
                fired: false,
            },
        )
        .unwrap();
        rt.run_until_idle(0);
        let seen = seen.lock();
        let expected: Vec<String> = (0..8).map(|n| format!("m{n}")).collect();
        assert_eq!(*seen, expected, "one sender's messages arrive in order");
    }

    #[test]
    fn pool_handles_kill_and_dead_letters_like_the_platform() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut rt = PoolRuntime::with_workers("grid", 2);
        rt.add_container("cg-a");
        rt.hint_parallel("cg-a");
        let victim = rt
            .spawn_agent(
                "cg-a",
                "victim",
                Ponger {
                    hits: Arc::clone(&hits),
                },
            )
            .unwrap();
        rt.post(ping("driver", &victim));
        rt.run_until_idle(0);
        assert_eq!(rt.delivered_count(), 1);
        // The pong back to the external "driver" dead-letters.
        assert_eq!(rt.dead_letter_count(), 1);
        rt.kill_container("cg-a").unwrap();
        rt.post(ping("driver", &victim));
        rt.run_until_idle(1);
        assert_eq!(
            rt.dead_letter_count(),
            2,
            "mail to a killed hinted container dead-letters"
        );
        assert_eq!(rt.container_count(), 0);
    }

    #[test]
    fn hinting_missing_or_sequential_containers_is_harmless() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut rt = PoolRuntime::with_workers("grid", 2);
        rt.hint_parallel("never-created");
        rt.add_container("c1");
        let a = rt
            .spawn_agent(
                "c1",
                "a",
                Ponger {
                    hits: Arc::clone(&hits),
                },
            )
            .unwrap();
        rt.post(ping("driver", &a));
        rt.run_until_idle(0);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
