use agentgrid_acl::{AclMessage, AgentId, SharedMessage};
use parking_lot::{Mutex, MutexGuard};

use crate::DirectoryFacilitator;

/// Lifecycle state of an agent, managed by the platform's AMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AgentState {
    /// Receiving messages and ticks.
    #[default]
    Active,
    /// Mailbox accumulates but the agent is not scheduled.
    Suspended,
    /// Removed; messages to it dead-letter.
    Dead,
}

/// How a context reaches the directory facilitator.
///
/// The deterministic stepper hands out a plain `&mut`; parallel runtimes
/// hand out a lock that is taken **lazily** on the first
/// [`AgentCtx::df`] call, so agents that never consult the directory
/// (the common case for collectors and sinks) run without touching the
/// shared lock at all. A lazily taken guard is held until the callback
/// returns.
enum DfAccess<'a> {
    Direct(&'a mut DirectoryFacilitator),
    Shared {
        lock: &'a Mutex<DirectoryFacilitator>,
        guard: Option<MutexGuard<'a, DirectoryFacilitator>>,
    },
}

impl std::fmt::Debug for DfAccess<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfAccess::Direct(_) => f.write_str("DfAccess::Direct"),
            DfAccess::Shared { guard, .. } => f
                .debug_struct("DfAccess::Shared")
                .field("locked", &guard.is_some())
                .finish(),
        }
    }
}

/// Execution context handed to an agent during its callbacks.
///
/// This is the agent's only window to the outside: sending messages,
/// reading the simulated clock, knowing its own identity, and querying
/// the directory facilitator.
#[derive(Debug)]
pub struct AgentCtx<'a> {
    self_id: &'a AgentId,
    container: &'a str,
    now_ms: u64,
    outbox: &'a mut Vec<SharedMessage>,
    df: DfAccess<'a>,
}

impl<'a> AgentCtx<'a> {
    /// Builds a context directly — exposed so downstream crates can
    /// unit-test their [`Agent`] implementations without a full
    /// [`Platform`](crate::Platform).
    pub fn new(
        self_id: &'a AgentId,
        container: &'a str,
        now_ms: u64,
        outbox: &'a mut Vec<SharedMessage>,
        df: &'a mut DirectoryFacilitator,
    ) -> Self {
        AgentCtx {
            self_id,
            container,
            now_ms,
            outbox,
            df: DfAccess::Direct(df),
        }
    }

    /// Builds a context whose directory access goes through a shared
    /// lock, taken lazily on the first [`df`](Self::df) call. Used by
    /// runtimes that execute containers concurrently.
    pub fn new_shared(
        self_id: &'a AgentId,
        container: &'a str,
        now_ms: u64,
        outbox: &'a mut Vec<SharedMessage>,
        df: &'a Mutex<DirectoryFacilitator>,
    ) -> Self {
        AgentCtx {
            self_id,
            container,
            now_ms,
            outbox,
            df: DfAccess::Shared {
                lock: df,
                guard: None,
            },
        }
    }

    /// This agent's identifier.
    pub fn self_id(&self) -> &AgentId {
        self.self_id
    }

    /// Name of the container currently hosting this agent (changes after
    /// migration).
    pub fn container(&self) -> &str {
        self.container
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Queues a message for routing at the end of the current step.
    ///
    /// Accepts either a plain [`AclMessage`] or an already-shared
    /// [`SharedMessage`]; forwarding a received message is a pointer
    /// bump, never a deep clone.
    pub fn send(&mut self, message: impl Into<SharedMessage>) {
        self.outbox.push(message.into());
    }

    /// Read/write access to the directory facilitator.
    ///
    /// On runtimes that share the directory behind a lock, the first
    /// call takes the lock and the guard is held for the rest of this
    /// callback.
    pub fn df(&mut self) -> &mut DirectoryFacilitator {
        match &mut self.df {
            DfAccess::Direct(df) => df,
            DfAccess::Shared { lock, guard } => guard.get_or_insert_with(|| lock.lock()),
        }
    }
}

/// A platform agent.
///
/// All methods have do-nothing defaults, so trivial agents implement only
/// what they need. State lives in the implementing struct and moves with
/// the agent on migration.
pub trait Agent: Send {
    /// Called once when the agent is spawned (and NOT again after
    /// migration — migration preserves state, not lifecycle).
    fn setup(&mut self, ctx: &mut AgentCtx<'_>) {
        let _ = ctx;
    }

    /// Called for each message delivered to this agent.
    ///
    /// The message is borrowed: runtimes share one allocation across all
    /// receivers of a multicast. Clone individual fields if the agent
    /// needs to keep them past the callback.
    fn on_message(&mut self, message: &AclMessage, ctx: &mut AgentCtx<'_>) {
        let _ = (message, ctx);
    }

    /// Called once per platform step after message delivery.
    fn on_tick(&mut self, ctx: &mut AgentCtx<'_>) {
        let _ = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl Agent for Noop {}

    #[test]
    fn default_callbacks_do_nothing() {
        // Compile-time check that all defaults exist; exercise them too.
        let mut agent = Noop;
        let id = AgentId::new("n@c");
        let mut outbox = Vec::new();
        let mut df = DirectoryFacilitator::new();
        let mut ctx = AgentCtx::new(&id, "c", 5, &mut outbox, &mut df);
        agent.setup(&mut ctx);
        agent.on_tick(&mut ctx);
        assert_eq!(ctx.now_ms(), 5);
        assert_eq!(ctx.self_id().name(), "n@c");
        assert_eq!(ctx.container(), "c");
        drop(ctx);
        assert!(outbox.is_empty());
    }

    #[test]
    fn ctx_send_queues_to_outbox() {
        use agentgrid_acl::Performative;
        let id = AgentId::new("a");
        let mut outbox = Vec::new();
        let mut df = DirectoryFacilitator::new();
        let mut ctx = AgentCtx::new(&id, "c", 0, &mut outbox, &mut df);
        let msg = AclMessage::builder(Performative::Inform)
            .sender(id.clone())
            .receiver(AgentId::new("b"))
            .build()
            .unwrap();
        ctx.send(msg);
        drop(ctx);
        assert_eq!(outbox.len(), 1);
    }

    #[test]
    fn agent_state_defaults_active() {
        assert_eq!(AgentState::default(), AgentState::Active);
    }
}
