//! The batch-first delivery contract shared by every runtime.
//!
//! Routing used to be a per-message affair: each queued
//! [`SharedMessage`] was resolved, admitted, and delivered leg by leg.
//! All runtimes now drain their inbox into a batch and group it into
//! **per-container batches** first; transport-fault checks and receiver
//! resolution happen here, once per batch, and the runtimes then apply
//! overload admission ([`MailboxTracker::admit_batch`]) and flush each
//! container's batch in one go. The grouping preserves posted order
//! within every container batch, so per-(sender, receiver) FIFO
//! ordering is untouched; what changes is the locking and delivery
//! shape — one routing-table acquisition and one channel send (or one
//! mailbox walk) per container per batch instead of per message.
//!
//! [`MailboxTracker::admit_batch`]: crate::overload::MailboxTracker::admit_batch

use std::collections::BTreeMap;

use agentgrid_acl::{AgentId, SharedMessage};

use crate::platform::FaultSet;

/// One container's share of a routed batch: messages in posted order,
/// each with the exact list of its receivers resident in that container.
/// Fan-out is refcount bumps on the shared allocation, never a deep
/// clone.
pub(crate) type ContainerBatch = Vec<(SharedMessage, Vec<AgentId>)>;

/// Groups a drained inbox batch into per-container batches.
///
/// * `faults` is applied first: any active `DropFrom` silently skips
///   whole messages, any active `DropTo` silently skips single legs
///   (drops are not dead letters, matching a lossy network). The set is
///   a union — every active fault applies independently.
/// * `resolve` maps a receiver to its current container; unresolved
///   legs go to `fail` (dead-letter or requeue-once, decided by the
///   caller) in exactly the order a per-message router would have
///   failed them.
///
/// Resolution is memoized for the duration of the call: fan-out batches
/// name the same handful of receivers hundreds of times per round, and
/// agents do not move containers mid-batch, so each receiver is probed
/// against the routing table exactly once. Unresolved receivers are
/// cached too — but `fail` still fires for every leg naming them, in
/// posted order, so dead-letter accounting is unchanged.
///
/// The returned map iterates in container-name order, so batch-first
/// routing stays deterministic on the deterministic runtimes.
pub(crate) fn group_into_batches(
    batch: &[SharedMessage],
    faults: &FaultSet,
    mut resolve: impl FnMut(&AgentId) -> Option<String>,
    mut fail: impl FnMut(&SharedMessage, &AgentId),
) -> BTreeMap<String, ContainerBatch> {
    let mut per_container: BTreeMap<String, ContainerBatch> = BTreeMap::new();
    let mut resolved: BTreeMap<AgentId, Option<String>> = BTreeMap::new();
    for message in batch {
        if faults.drops_from(message.sender()) {
            continue;
        }
        let mut groups: BTreeMap<String, Vec<AgentId>> = BTreeMap::new();
        for receiver in message.receivers() {
            if faults.drops_to(receiver) {
                continue;
            }
            let home = resolved
                .entry(receiver.clone())
                .or_insert_with(|| resolve(receiver));
            match home {
                Some(container) => groups
                    .entry(container.clone())
                    .or_default()
                    .push(receiver.clone()),
                None => fail(message, receiver),
            }
        }
        for (container, receivers) in groups {
            per_container
                .entry(container)
                .or_default()
                .push((SharedMessage::clone(message), receivers));
        }
    }
    per_container
}

/// Number of delivery legs in a container batch (what the
/// `agentgrid_delivery_batch_size` histogram observes per flush).
pub(crate) fn batch_legs(batch: &ContainerBatch) -> u64 {
    batch
        .iter()
        .map(|(_, receivers)| receivers.len() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::{AclMessage, Performative};

    fn msg(sender: &str, receivers: &[&str]) -> SharedMessage {
        let mut builder = AclMessage::builder(Performative::Inform).sender(AgentId::new(sender));
        for r in receivers {
            builder = builder.receiver(AgentId::new(*r));
        }
        builder.build().unwrap().into_shared()
    }

    #[test]
    fn grouping_preserves_posted_order_per_container() {
        let batch = vec![
            msg("s", &["a@x", "b@x"]),
            msg("s", &["a@x"]),
            msg("s", &["b@x"]),
        ];
        let homes: BTreeMap<&str, &str> = [("a@x", "c1"), ("b@x", "c2")].into();
        let grouped = group_into_batches(
            &batch,
            &FaultSet::default(),
            |r| homes.get(r.name()).map(|c| (*c).to_owned()),
            |_, _| panic!("everything resolves"),
        );
        let c1 = &grouped["c1"];
        assert_eq!(c1.len(), 2);
        assert!(SharedMessage::ptr_eq(&c1[0].0, &batch[0]));
        assert!(SharedMessage::ptr_eq(&c1[1].0, &batch[1]));
        let c2 = &grouped["c2"];
        assert_eq!(c2.len(), 2);
        assert!(SharedMessage::ptr_eq(&c2[0].0, &batch[0]));
        assert!(SharedMessage::ptr_eq(&c2[1].0, &batch[2]));
        assert_eq!(batch_legs(c1), 2);
    }

    #[test]
    fn faults_drop_silently_and_unresolved_legs_fail_in_order() {
        let batch = vec![msg("bad", &["a@x"]), msg("s", &["ghost@x", "a@x"])];
        let mut failed = Vec::new();
        let grouped = group_into_batches(
            &batch,
            &FaultSet::just(crate::platform::TransportFault::DropFrom(AgentId::new(
                "bad",
            ))),
            |r| (r.name() == "a@x").then(|| "c1".to_owned()),
            |m, r| failed.push((SharedMessage::clone(m), r.clone())),
        );
        // The faulted sender's message vanished entirely; the ghost leg
        // failed; the resolvable leg grouped.
        assert_eq!(grouped["c1"].len(), 1);
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].1, AgentId::new("ghost@x"));
    }

    #[test]
    fn resolution_is_memoized_but_fail_fires_per_leg() {
        let batch = vec![
            msg("s", &["a@x", "ghost@x"]),
            msg("s", &["a@x", "ghost@x"]),
            msg("s", &["a@x"]),
        ];
        let mut probes = Vec::new();
        let mut failed = Vec::new();
        let grouped = group_into_batches(
            &batch,
            &FaultSet::default(),
            |r| {
                probes.push(r.clone());
                (r.name() == "a@x").then(|| "c1".to_owned())
            },
            |_, r| failed.push(r.clone()),
        );
        // One probe per distinct receiver, resolvable or not...
        assert_eq!(probes, vec![AgentId::new("a@x"), AgentId::new("ghost@x")]);
        // ...but every unresolved leg still dead-letters, in order.
        assert_eq!(failed, vec![AgentId::new("ghost@x"); 2]);
        assert_eq!(grouped["c1"].len(), 3);
    }

    #[test]
    fn drop_to_skips_only_the_faulted_leg() {
        let batch = vec![msg("s", &["a@x", "b@x"])];
        let homes: BTreeMap<&str, &str> = [("a@x", "c1"), ("b@x", "c1")].into();
        let grouped = group_into_batches(
            &batch,
            &FaultSet::just(crate::platform::TransportFault::DropTo(AgentId::new("a@x"))),
            |r| homes.get(r.name()).map(|c| (*c).to_owned()),
            |_, _| panic!("b resolves"),
        );
        assert_eq!(grouped["c1"][0].1, vec![AgentId::new("b@x")]);
    }
}
