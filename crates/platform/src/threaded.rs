//! A threaded runtime for agent containers.
//!
//! The default [`Platform`](crate::Platform) steps containers
//! deterministically — ideal for tests and reproducible experiments. This
//! module provides the deployment-shaped alternative: **one OS thread per
//! container**, crossbeam channels as the message transport, and a shared
//! directory behind a lock. Agent code is identical — anything
//! implementing [`Agent`] runs unmodified on either runtime.
//!
//! Delivery order between containers is nondeterministic (as it would be
//! across real machines); per-sender/per-receiver FIFO order is
//! preserved by the channels.
//!
//! # Examples
//!
//! ```
//! use agentgrid_acl::{AclMessage, AgentId, Performative, Value};
//! use agentgrid_platform::threaded::ThreadedPlatform;
//! use agentgrid_platform::{Agent, AgentCtx};
//!
//! struct Echo;
//! impl Agent for Echo {
//!     fn on_message(&mut self, msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
//!         ctx.send(msg.reply(Performative::Inform, Value::symbol("pong")));
//!     }
//! }
//!
//! let mut platform = ThreadedPlatform::new("rt");
//! platform.add_container("c1");
//! platform.spawn("c1", "echo", Echo).unwrap();
//! let mut handle = platform.start();
//!
//! let ping = AclMessage::builder(Performative::Request)
//!     .sender(AgentId::new("outside"))
//!     .receiver(AgentId::with_platform("echo", "rt"))
//!     .build()
//!     .unwrap();
//! handle.post(ping);
//! handle.wait_idle();
//! let stats = handle.shutdown();
//! assert_eq!(stats.delivered, 1);
//! assert_eq!(stats.dead_letters.len(), 1); // the pong to "outside"
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use agentgrid_acl::{AgentId, SharedMessage};
use agentgrid_telemetry::{ContainerScope, TelemetryHandle};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::agent::{Agent, AgentCtx};
use crate::{DirectoryFacilitator, PlatformError};

/// The agents registered to one container before the threads start.
type AgentRoster = Vec<(AgentId, Box<dyn Agent>)>;

enum ContainerMsg {
    /// Deliver one shared message to exactly these resident agents.
    ///
    /// The router names the receivers explicitly so a multicast with
    /// several receivers in one container is sent (and processed) once,
    /// and the container never guesses from `message.receivers()` which
    /// copies are its own.
    Deliver(SharedMessage, Vec<AgentId>),
    /// Run one `on_tick` round (stepped driving, e.g. simulation loops).
    Tick,
    Stop,
}

struct SharedState {
    /// Shared yellow pages / container directory.
    df: Mutex<DirectoryFacilitator>,
    /// Messages enqueued but not yet fully processed (quiescence gauge).
    in_flight: AtomicI64,
    /// Delivered-message counter.
    delivered: AtomicU64,
    /// Simulated clock read by agents through `AgentCtx::now_ms`.
    clock_ms: AtomicU64,
    /// Undeliverable messages, one entry per unreachable receiver.
    dead_letters: Mutex<Vec<SharedMessage>>,
    /// Optional telemetry sink shared by the router and all containers.
    telemetry: Option<TelemetryHandle>,
}

/// Final statistics returned by [`RunningPlatform::shutdown`].
#[derive(Debug)]
pub struct RunStats {
    /// Messages delivered to agents.
    pub delivered: u64,
    /// Messages whose receiver did not exist, one entry per unreachable
    /// receiver (entries of one multicast share an allocation).
    pub dead_letters: Vec<SharedMessage>,
    /// Telemetry recorded during the run (metrics + traces), if a sink
    /// was attached before [`ThreadedPlatform::start`].
    pub telemetry: Option<TelemetryHandle>,
}

/// A threaded platform under construction (agents are spawned before the
/// threads start).
pub struct ThreadedPlatform {
    name: String,
    containers: BTreeMap<String, AgentRoster>,
    df: DirectoryFacilitator,
    telemetry: Option<TelemetryHandle>,
}

impl std::fmt::Debug for ThreadedPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedPlatform")
            .field("name", &self.name)
            .field("containers", &self.containers.len())
            .finish()
    }
}

impl ThreadedPlatform {
    /// Creates a platform with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ThreadedPlatform {
            name: name.into(),
            containers: BTreeMap::new(),
            df: DirectoryFacilitator::new(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry sink. Must be called before
    /// [`start`](Self::start); the router and container threads record
    /// into it for the whole run.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<TelemetryHandle> {
        self.telemetry.clone()
    }

    /// Read access to the directory before the threads start.
    pub fn df(&self) -> &DirectoryFacilitator {
        &self.df
    }

    /// Number of containers registered so far.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Pre-start directory registration (scenario setup); the directory
    /// moves behind the shared lock when [`start`](Self::start) runs.
    pub fn df_mut(&mut self) -> &mut DirectoryFacilitator {
        &mut self.df
    }

    /// Adds a container.
    ///
    /// # Panics
    ///
    /// Panics on duplicate container names.
    pub fn add_container(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        assert!(
            self.containers.insert(name.clone(), Vec::new()).is_none(),
            "container `{name}` already exists"
        );
        self
    }

    /// Registers an agent to run in `container` (threads start later).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] for unknown containers or duplicate
    /// agent names.
    pub fn spawn(
        &mut self,
        container: &str,
        local_name: &str,
        agent: impl Agent + 'static,
    ) -> Result<AgentId, PlatformError> {
        let id = AgentId::with_platform(local_name, &self.name);
        if self
            .containers
            .values()
            .flatten()
            .any(|(existing, _)| existing == &id)
        {
            return Err(PlatformError::DuplicateAgent(id));
        }
        let slot = self
            .containers
            .get_mut(container)
            .ok_or_else(|| PlatformError::NoSuchContainer(container.to_owned()))?;
        slot.push((id.clone(), Box::new(agent)));
        Ok(id)
    }

    /// Starts one thread per container plus a router thread, runs every
    /// agent's `setup`, and returns the running handle.
    pub fn start(self) -> RunningPlatform {
        let shared = Arc::new(SharedState {
            df: Mutex::new(self.df),
            in_flight: AtomicI64::new(0),
            delivered: AtomicU64::new(0),
            clock_ms: AtomicU64::new(0),
            dead_letters: Mutex::new(Vec::new()),
            telemetry: self.telemetry,
        });

        // Router: one inbox; knows which container channel owns each id.
        let (router_tx, router_rx) = unbounded::<SharedMessage>();
        let mut container_txs: BTreeMap<String, Sender<ContainerMsg>> = BTreeMap::new();
        let mut residents: BTreeMap<AgentId, String> = BTreeMap::new();
        let mut threads: Vec<JoinHandle<()>> = Vec::new();

        for (container_name, agents) in self.containers {
            let (tx, rx) = unbounded::<ContainerMsg>();
            container_txs.insert(container_name.clone(), tx);
            for (id, _) in &agents {
                residents.insert(id.clone(), container_name.clone());
            }
            threads.push(spawn_container_thread(
                container_name,
                agents,
                rx,
                router_tx.clone(),
                Arc::clone(&shared),
            ));
        }

        // Router thread: moves messages from the shared inbox to the
        // owning container, dead-lettering unknown receivers.
        let router_shared = Arc::clone(&shared);
        let router_containers = container_txs.clone();
        let router = std::thread::spawn(move || {
            // Per-container telemetry scopes, resolved once so routing
            // never takes the registry lock.
            let scopes: BTreeMap<String, Arc<ContainerScope>> = match &router_shared.telemetry {
                Some(t) => residents
                    .values()
                    .map(|c| (c.clone(), t.container_scope(c)))
                    .collect(),
                None => BTreeMap::new(),
            };
            // Exits when every sender (containers + the handle) is gone.
            while let Ok(message) = router_rx.recv() {
                // Group receivers by owning container so each container
                // gets exactly one Deliver per message, with the precise
                // list of its residents to hand the message to. Fan-out
                // is refcount bumps; the message is never deep-cloned.
                let mut per_container: BTreeMap<&str, Vec<AgentId>> = BTreeMap::new();
                let now = router_shared.clock_ms.load(Ordering::SeqCst);
                for receiver in message.receivers() {
                    match residents.get(receiver) {
                        Some(container) => {
                            if let Some(t) = &router_shared.telemetry {
                                t.message_delivered(&message, receiver, &scopes[container], now);
                            }
                            per_container
                                .entry(container.as_str())
                                .or_default()
                                .push(receiver.clone())
                        }
                        None => {
                            if let Some(t) = &router_shared.telemetry {
                                t.message_dead_lettered(&message, receiver, now);
                            }
                            router_shared
                                .dead_letters
                                .lock()
                                .push(SharedMessage::clone(&message))
                        }
                    }
                }
                for (container, targets) in per_container {
                    router_shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    let _ = router_containers[container].send(ContainerMsg::Deliver(
                        SharedMessage::clone(&message),
                        targets,
                    ));
                }
                // The router finished handling this inbox entry.
                router_shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        });

        RunningPlatform {
            shared,
            router_tx,
            container_txs,
            threads,
            router: Some(router),
        }
    }
}

fn spawn_container_thread(
    container_name: String,
    mut agents: AgentRoster,
    rx: Receiver<ContainerMsg>,
    router_tx: Sender<SharedMessage>,
    shared: Arc<SharedState>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // Telemetry handles, resolved once per thread; steady-state
        // recording is pure atomics.
        let scope = shared
            .telemetry
            .as_ref()
            .map(|t| t.container_scope(&container_name));
        // Setup phase.
        let mut outbox = Vec::new();
        for (id, agent) in agents.iter_mut() {
            let now = shared.clock_ms.load(Ordering::SeqCst);
            let mut df = shared.df.lock();
            let mut ctx = AgentCtx::new(id, &container_name, now, &mut outbox, &mut df);
            agent.setup(&mut ctx);
        }
        record_sends(&shared, scope.as_deref(), &outbox, 0, None);
        flush(&mut outbox, &router_tx, &shared);

        loop {
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(ContainerMsg::Deliver(message, targets)) => {
                    let now = shared.clock_ms.load(Ordering::SeqCst);
                    for receiver in &targets {
                        if let Some((id, agent)) = agents.iter_mut().find(|(id, _)| id == receiver)
                        {
                            let span = match (&shared.telemetry, &scope) {
                                (Some(t), Some(scope)) => t.start_handle(&message, id, scope),
                                _ => None,
                            };
                            let started =
                                shared.telemetry.as_ref().map(|_| std::time::Instant::now());
                            let sent_from = outbox.len();
                            let mut df = shared.df.lock();
                            let mut ctx =
                                AgentCtx::new(id, &container_name, now, &mut outbox, &mut df);
                            agent.on_message(&message, &mut ctx);
                            drop(df);
                            shared.delivered.fetch_add(1, Ordering::SeqCst);
                            if let (Some(t), Some(scope)) = (&shared.telemetry, &scope) {
                                let busy_ns = started
                                    .map(|s| s.elapsed().as_nanos() as u64)
                                    .unwrap_or_default();
                                t.finish_handle(span, scope, now, busy_ns);
                            }
                            record_sends(&shared, scope.as_deref(), &outbox, sent_from, span);
                        }
                    }
                    flush(&mut outbox, &router_tx, &shared);
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Ok(ContainerMsg::Tick) => {
                    tick_all(
                        &mut agents,
                        &container_name,
                        scope.as_deref(),
                        &mut outbox,
                        &shared,
                    );
                    flush(&mut outbox, &router_tx, &shared);
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Ok(ContainerMsg::Stop) => break,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    // Idle: give agents their tick.
                    tick_all(
                        &mut agents,
                        &container_name,
                        scope.as_deref(),
                        &mut outbox,
                        &shared,
                    );
                    flush(&mut outbox, &router_tx, &shared);
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        }
    })
}

fn tick_all(
    agents: &mut AgentRoster,
    container_name: &str,
    scope: Option<&ContainerScope>,
    outbox: &mut Vec<SharedMessage>,
    shared: &SharedState,
) {
    let now = shared.clock_ms.load(Ordering::SeqCst);
    let sent_from = outbox.len();
    for (id, agent) in agents.iter_mut() {
        let mut df = shared.df.lock();
        let mut ctx = AgentCtx::new(id, container_name, now, outbox, &mut df);
        agent.on_tick(&mut ctx);
    }
    record_sends(shared, scope, outbox, sent_from, None);
}

/// Traces `outbox[sent_from..]` as sends parented to `span` (tick and
/// setup sends pass `None`: they open new conversations) and counts
/// them into the container's sent/stage counters.
fn record_sends(
    shared: &SharedState,
    scope: Option<&ContainerScope>,
    outbox: &[SharedMessage],
    sent_from: usize,
    span: Option<agentgrid_telemetry::SpanId>,
) {
    if let Some(t) = &shared.telemetry {
        let now = shared.clock_ms.load(Ordering::SeqCst);
        for sent in &outbox[sent_from..] {
            if let Some(scope) = scope {
                scope.on_sent();
            }
            t.message_sent(sent, span, now);
        }
    }
}

fn flush(outbox: &mut Vec<SharedMessage>, router_tx: &Sender<SharedMessage>, shared: &SharedState) {
    for message in outbox.drain(..) {
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let _ = router_tx.send(message);
    }
}

/// Handle to a started [`ThreadedPlatform`].
pub struct RunningPlatform {
    shared: Arc<SharedState>,
    router_tx: Sender<SharedMessage>,
    container_txs: BTreeMap<String, Sender<ContainerMsg>>,
    threads: Vec<JoinHandle<()>>,
    router: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RunningPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningPlatform")
            .field("containers", &self.container_txs.len())
            .field("in_flight", &self.shared.in_flight.load(Ordering::SeqCst))
            .finish()
    }
}

impl RunningPlatform {
    /// Sends a message into the platform from outside. Accepts a plain
    /// [`AclMessage`](agentgrid_acl::AclMessage) or a [`SharedMessage`].
    pub fn post(&mut self, message: impl Into<SharedMessage>) {
        let message = message.into();
        if let Some(t) = &self.shared.telemetry {
            let now = self.shared.clock_ms.load(Ordering::SeqCst);
            t.message_sent(&message, None, now);
        }
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let _ = self.router_tx.send(message);
    }

    /// Queues one `on_tick` round in every container (stepped driving —
    /// simulation loops advance the clock, tick, then
    /// [`wait_idle`](Self::wait_idle)). Containers also tick on their
    /// own whenever their inbox stays empty for ~20 ms.
    pub fn broadcast_tick(&self) {
        for tx in self.container_txs.values() {
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(ContainerMsg::Tick);
        }
    }

    /// Advances the shared simulated clock (agents read it on their next
    /// callback).
    pub fn advance_clock(&self, now_ms: u64) {
        self.shared.clock_ms.store(now_ms, Ordering::SeqCst);
    }

    /// Locked access to the shared directory.
    pub fn with_df<R>(&self, f: impl FnOnce(&mut DirectoryFacilitator) -> R) -> R {
        f(&mut self.shared.df.lock())
    }

    /// Blocks until no message is queued or being processed anywhere.
    /// Returns `false` on a 5-second timeout (deadlock guard).
    pub fn wait_idle(&self) -> bool {
        for _ in 0..500 {
            if self.shared.in_flight.load(Ordering::SeqCst) == 0 {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.shared.delivered.load(Ordering::SeqCst)
    }

    /// Messages delivered so far — same name as
    /// [`Platform::delivered_count`](crate::Platform::delivered_count)
    /// so generic code reads identically on either runtime.
    pub fn delivered_count(&self) -> u64 {
        self.delivered()
    }

    /// Undeliverable messages captured so far (one entry per unreachable
    /// receiver).
    pub fn dead_letter_count(&self) -> usize {
        self.shared.dead_letters.lock().len()
    }

    /// Snapshot of the undeliverable messages captured so far — same
    /// introspection surface as
    /// [`Platform::dead_letters`](crate::Platform::dead_letters).
    pub fn dead_letters(&self) -> Vec<SharedMessage> {
        self.shared.dead_letters.lock().clone()
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<TelemetryHandle> {
        self.shared.telemetry.clone()
    }

    /// Number of containers (threads) running.
    pub fn container_count(&self) -> usize {
        self.container_txs.len()
    }

    /// Stops every thread and returns the run statistics.
    pub fn shutdown(mut self) -> RunStats {
        for tx in self.container_txs.values() {
            let _ = tx.send(ContainerMsg::Stop);
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // With the containers joined, dropping our sender leaves the
        // router without producers; its `recv` errors and it exits.
        if let Some(router) = self.router.take() {
            drop(self.router_tx);
            let _ = router.join();
        }
        RunStats {
            delivered: self.shared.delivered.load(Ordering::SeqCst),
            dead_letters: std::mem::take(&mut self.shared.dead_letters.lock()),
            telemetry: self.shared.telemetry.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::{AclMessage, Performative, Value};
    use std::sync::atomic::AtomicUsize;

    /// Replies `pong` to every message and counts deliveries globally.
    struct Ponger {
        hits: Arc<AtomicUsize>,
    }

    impl Agent for Ponger {
        fn on_message(&mut self, msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
            self.hits.fetch_add(1, Ordering::SeqCst);
            ctx.send(msg.reply(Performative::Inform, Value::symbol("pong")));
        }
    }

    /// Forwards each received *request* to a target; replies coming back
    /// are absorbed (otherwise forwarder and ponger would loop forever).
    struct Forwarder {
        target: AgentId,
    }

    impl Agent for Forwarder {
        fn on_message(&mut self, msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
            if msg.performative() != Performative::Request {
                return;
            }
            let forward = AclMessage::builder(Performative::Request)
                .sender(ctx.self_id().clone())
                .receiver(self.target.clone())
                .content(msg.content().clone())
                .build()
                .unwrap();
            ctx.send(forward);
        }
    }

    fn ping(to: AgentId) -> AclMessage {
        AclMessage::builder(Performative::Request)
            .sender(AgentId::new("test-driver"))
            .receiver(to)
            .content(Value::symbol("ping"))
            .build()
            .unwrap()
    }

    #[test]
    fn messages_cross_container_threads() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a").add_container("b");
        let ponger = platform
            .spawn(
                "b",
                "ponger",
                Ponger {
                    hits: Arc::clone(&hits),
                },
            )
            .unwrap();
        platform
            .spawn(
                "a",
                "fwd",
                Forwarder {
                    target: ponger.clone(),
                },
            )
            .unwrap();
        let mut handle = platform.start();
        for _ in 0..10 {
            handle.post(ping(AgentId::with_platform("fwd", "rt")));
        }
        assert!(handle.wait_idle(), "must quiesce");
        let stats = handle.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 10);
        // 10 to fwd + 10 to ponger + 10 pong replies back to fwd.
        assert_eq!(stats.delivered, 30);
        assert!(stats.dead_letters.is_empty());
    }

    #[test]
    fn unknown_receiver_dead_letters() {
        let platform = {
            let mut p = ThreadedPlatform::new("rt");
            p.add_container("a");
            p
        };
        let mut handle = platform.start();
        handle.post(ping(AgentId::new("ghost@rt")));
        assert!(handle.wait_idle());
        let stats = handle.shutdown();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dead_letters.len(), 1);
    }

    #[test]
    fn clock_is_visible_to_agents() {
        struct ClockReader {
            seen: Arc<AtomicUsize>,
        }
        impl Agent for ClockReader {
            fn on_message(&mut self, _msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
                self.seen.store(ctx.now_ms() as usize, Ordering::SeqCst);
            }
        }
        let seen = Arc::new(AtomicUsize::new(0));
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a");
        let id = platform
            .spawn(
                "a",
                "reader",
                ClockReader {
                    seen: Arc::clone(&seen),
                },
            )
            .unwrap();
        let mut handle = platform.start();
        handle.advance_clock(12_345);
        handle.post(ping(id));
        assert!(handle.wait_idle());
        handle.shutdown();
        assert_eq!(seen.load(Ordering::SeqCst), 12_345);
    }

    #[test]
    fn df_is_shared_across_threads() {
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a");
        struct Registrar;
        impl Agent for Registrar {
            fn setup(&mut self, ctx: &mut AgentCtx<'_>) {
                let id = ctx.self_id().clone();
                ctx.df().register_service(id, "analysis", ["cpu"]);
            }
        }
        platform.spawn("a", "reg", Registrar).unwrap();
        let handle = platform.start();
        assert!(handle.wait_idle());
        let count = handle.with_df(|df| df.service_count());
        assert_eq!(count, 1);
        handle.shutdown();
    }

    #[test]
    fn duplicate_and_missing_errors_before_start() {
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a");
        platform
            .spawn(
                "a",
                "x",
                Ponger {
                    hits: Arc::new(AtomicUsize::new(0)),
                },
            )
            .unwrap();
        assert!(matches!(
            platform.spawn(
                "a",
                "x",
                Ponger {
                    hits: Arc::new(AtomicUsize::new(0))
                }
            ),
            Err(PlatformError::DuplicateAgent(_))
        ));
        assert!(matches!(
            platform.spawn(
                "nope",
                "y",
                Ponger {
                    hits: Arc::new(AtomicUsize::new(0))
                }
            ),
            Err(PlatformError::NoSuchContainer(_))
        ));
    }
}
