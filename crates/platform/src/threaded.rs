//! A threaded runtime for agent containers.
//!
//! The default [`Platform`](crate::Platform) steps containers
//! deterministically — ideal for tests and reproducible experiments. This
//! module provides the deployment-shaped alternative: **one OS thread per
//! container**, crossbeam channels as the message transport, and a shared
//! directory behind a lock. Agent code is identical — anything
//! implementing [`Agent`] runs unmodified on either runtime.
//!
//! Delivery order between containers is nondeterministic (as it would be
//! across real machines); per-sender/per-receiver FIFO order is
//! preserved by the channels.
//!
//! Containers and agents can join — and crash — while the platform is
//! running: the router resolves receivers through a shared routing table,
//! so [`RunningPlatform::add_container`], [`RunningPlatform::spawn`] and
//! [`RunningPlatform::kill_container`] take effect immediately. Transport
//! faults ([`TransportFault`]) and the requeue-once dead-letter policy
//! mirror the deterministic platform's semantics.
//!
//! # Examples
//!
//! ```
//! use agentgrid_acl::{AclMessage, AgentId, Performative, Value};
//! use agentgrid_platform::threaded::ThreadedPlatform;
//! use agentgrid_platform::{Agent, AgentCtx};
//!
//! struct Echo;
//! impl Agent for Echo {
//!     fn on_message(&mut self, msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
//!         ctx.send(msg.reply(Performative::Inform, Value::symbol("pong")));
//!     }
//! }
//!
//! let mut platform = ThreadedPlatform::new("rt");
//! platform.add_container("c1");
//! platform.spawn("c1", "echo", Echo).unwrap();
//! let mut handle = platform.start();
//!
//! let ping = AclMessage::builder(Performative::Request)
//!     .sender(AgentId::new("outside"))
//!     .receiver(AgentId::with_platform("echo", "rt"))
//!     .build()
//!     .unwrap();
//! handle.post(ping);
//! handle.wait_idle();
//! let stats = handle.shutdown();
//! assert_eq!(stats.delivered, 1);
//! assert_eq!(stats.dead_letters.len(), 1); // the pong to "outside"
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use agentgrid_acl::{AgentId, SharedMessage};
use agentgrid_telemetry::{ContainerScope, TelemetryHandle};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::agent::{Agent, AgentCtx};
use crate::delivery::{batch_legs, group_into_batches, ContainerBatch};
use crate::net::{NetAdversary, NetCommand, NetStats};
use crate::overload::{MailboxConfig, MailboxTracker, OverloadStats, PressureSignal};
use crate::platform::{FaultSet, TransportFault};
use crate::{DirectoryFacilitator, PlatformError};

/// The agents registered to one container before the threads start.
type AgentRoster = Vec<(AgentId, Box<dyn Agent>)>;

/// Bound on the dead-letter store. Entries beyond the cap are dropped
/// (but still counted — [`RunningPlatform::dead_letter_count`] stays
/// exact via the overflow counter), so a sustained failure storm cannot
/// grow memory without limit.
pub const DEAD_LETTER_CAP: usize = 4096;

/// Bound on the requeue-once ledger and its parking lot. Failures
/// beyond the cap skip the retry and dead-letter directly, counted by
/// [`RunningPlatform::requeue_overflow`].
pub const REQUEUE_CAP: usize = 4096;

/// Upper bound on how many inbox messages the router folds into one
/// routing round. Bounds the latency a flood can add to any single
/// message while still amortising the routing/overload locks.
const ROUTER_BATCH_MAX: usize = 256;

enum ContainerMsg {
    /// Deliver one per-container batch: each entry pairs a shared
    /// message with exactly the resident agents it addresses, in posted
    /// order.
    ///
    /// The router names the receivers explicitly so a multicast with
    /// several receivers in one container is sent (and processed) once,
    /// and the container never guesses from `message.receivers()` which
    /// copies are its own. Batching a routing round into one channel
    /// send per container keeps per-(sender, receiver) FIFO order: the
    /// batch preserves posted order, and the channel preserves batch
    /// order.
    Deliver(ContainerBatch),
    /// Run one `on_tick` round (stepped driving, e.g. simulation loops).
    Tick,
    /// Add an agent to the roster and run its `setup` (late spawn while
    /// the platform is running). Channel FIFO guarantees the spawn is
    /// processed before any `Deliver` routed to the new agent.
    Spawn(AgentId, Box<dyn Agent>),
    Stop,
}

/// Who owns which agent, and how to reach each container — mutated as
/// containers join and crash mid-run.
#[derive(Default)]
struct RoutingTable {
    residents: BTreeMap<AgentId, String>,
    txs: BTreeMap<String, Sender<ContainerMsg>>,
}

struct SharedState {
    /// Shared yellow pages / container directory.
    df: Mutex<DirectoryFacilitator>,
    /// Resident→container map and container channels (dynamic
    /// membership: kills and late spawns edit this table).
    routes: Mutex<RoutingTable>,
    /// Messages enqueued but not yet fully processed (quiescence gauge).
    in_flight: AtomicI64,
    /// Delivered-message counter.
    delivered: AtomicU64,
    /// Simulated clock read by agents through `AgentCtx::now_ms`.
    clock_ms: AtomicU64,
    /// Undeliverable messages, one entry per unreachable receiver.
    dead_letters: Mutex<Vec<SharedMessage>>,
    /// Composable transport-fault set, mirrored from the deterministic
    /// platform: drops are silent, not dead-lettered.
    transport: Mutex<FaultSet>,
    /// The seeded network adversary + reliability layer; `None` (the
    /// default) routes exactly as before. Lock order: `routes` before
    /// `net`, everywhere.
    net: Mutex<Option<NetAdversary>>,
    /// Requeue-once dead-letter policy (see
    /// [`Platform::set_dead_letter_requeue`](crate::Platform::set_dead_letter_requeue)).
    requeue_dead_letters: AtomicBool,
    /// Narrowed copies already requeued once (pointer-identity ledger).
    /// Entries drain when their retry fails again, and the ledger is
    /// capped at [`REQUEUE_CAP`], so it cannot grow without limit.
    requeue_ledger: Mutex<Vec<SharedMessage>>,
    /// Requeued messages waiting for the clock to advance.
    requeue_parked: Mutex<Vec<SharedMessage>>,
    /// Total messages ever requeued (monotone; the ledger itself drains).
    requeued_total: AtomicU64,
    /// Dead letters dropped because the store hit [`DEAD_LETTER_CAP`].
    dead_letter_overflow: AtomicU64,
    /// Failures that skipped the requeue because the ledger/parking lot
    /// hit [`REQUEUE_CAP`].
    requeue_overflow: AtomicU64,
    /// Opt-in bounded-mailbox layer (see [`crate::overload`]); `None`
    /// routes exactly as before. Admission happens under the routing
    /// lock; window rolls happen in `advance_clock`.
    overload: Mutex<Option<MailboxTracker>>,
    /// Optional telemetry sink shared by the router and all containers.
    telemetry: Option<TelemetryHandle>,
}

impl SharedState {
    /// Handles one undeliverable `(message, receiver)` leg: requeues a
    /// narrowed copy once when the policy is on, dead-letters otherwise.
    fn fail_delivery(&self, message: &SharedMessage, receiver: &AgentId, now: u64) {
        if self.requeue_dead_letters.load(Ordering::SeqCst) {
            let mut ledger = self.requeue_ledger.lock();
            match ledger
                .iter()
                .position(|m| SharedMessage::ptr_eq(m, message))
            {
                None => {
                    let mut parked = self.requeue_parked.lock();
                    if ledger.len() < REQUEUE_CAP && parked.len() < REQUEUE_CAP {
                        let retry: SharedMessage = message.narrowed(receiver.clone()).into_shared();
                        ledger.push(SharedMessage::clone(&retry));
                        parked.push(retry);
                        self.requeued_total.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    // Bookkeeping full: skip the retry, dead-letter now.
                    self.requeue_overflow.fetch_add(1, Ordering::Relaxed);
                }
                Some(at) => {
                    // Second failure of a requeued copy: drain the ledger
                    // entry (this allocation is never re-sent), then
                    // dead-letter for real.
                    ledger.swap_remove(at);
                }
            }
        }
        if let Some(t) = &self.telemetry {
            t.message_dead_lettered(message, receiver, now);
        }
        let mut dead = self.dead_letters.lock();
        if dead.len() < DEAD_LETTER_CAP {
            dead.push(SharedMessage::clone(message));
        } else {
            self.dead_letter_overflow.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Final statistics returned by [`RunningPlatform::shutdown`].
#[derive(Debug)]
pub struct RunStats {
    /// Messages delivered to agents.
    pub delivered: u64,
    /// Messages whose receiver did not exist, one entry per unreachable
    /// receiver (entries of one multicast share an allocation).
    pub dead_letters: Vec<SharedMessage>,
    /// Telemetry recorded during the run (metrics + traces), if a sink
    /// was attached before [`ThreadedPlatform::start`].
    pub telemetry: Option<TelemetryHandle>,
}

/// A threaded platform under construction (agents are spawned before the
/// threads start).
pub struct ThreadedPlatform {
    name: String,
    containers: BTreeMap<String, AgentRoster>,
    df: DirectoryFacilitator,
    transport: FaultSet,
    net: Option<NetAdversary>,
    requeue_dead_letters: bool,
    telemetry: Option<TelemetryHandle>,
    overload: Option<(MailboxConfig, Option<Arc<PressureSignal>>)>,
}

impl std::fmt::Debug for ThreadedPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedPlatform")
            .field("name", &self.name)
            .field("containers", &self.containers.len())
            .finish()
    }
}

impl ThreadedPlatform {
    /// Creates a platform with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ThreadedPlatform {
            name: name.into(),
            containers: BTreeMap::new(),
            df: DirectoryFacilitator::new(),
            transport: FaultSet::default(),
            net: None,
            requeue_dead_letters: false,
            telemetry: None,
            overload: None,
        }
    }

    /// Attaches a telemetry sink. Must be called before
    /// [`start`](Self::start); the router and container threads record
    /// into it for the whole run.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<TelemetryHandle> {
        self.telemetry.clone()
    }

    /// Injects (or clears) a transport fault, effective from start,
    /// with the legacy **replace** semantics (the new fault becomes the
    /// whole set). Composable windows go through
    /// [`net_command`](Self::net_command).
    pub fn set_transport_fault(&mut self, fault: TransportFault) {
        self.transport = FaultSet::just(fault);
    }

    /// Applies one command against the network layer, effective from
    /// start (see [`crate::net`]).
    pub fn net_command(&mut self, command: NetCommand) {
        match command {
            NetCommand::AddFault(fault) => self.transport.insert(fault),
            NetCommand::RemoveFault(fault) => self.transport.remove(&fault),
            NetCommand::ClearFaults => self.transport.clear(),
            other => self
                .net
                .get_or_insert_with(|| NetAdversary::new(0))
                .command(other),
        }
    }

    /// Counters of the network adversary/reliability layer; `None`
    /// while no [`net_command`](Self::net_command) has touched it.
    pub fn net_stats(&self) -> Option<NetStats> {
        self.net.as_ref().map(NetAdversary::stats)
    }

    /// Switches the dead-letter requeue policy, effective from start
    /// (see [`Platform::set_dead_letter_requeue`](crate::Platform::set_dead_letter_requeue)).
    pub fn set_dead_letter_requeue(&mut self, enabled: bool) {
        self.requeue_dead_letters = enabled;
    }

    /// Enables bounded mailboxes with the given overflow policy,
    /// effective from [`start`](Self::start). Semantics match
    /// [`Platform::set_overload`](crate::Platform::set_overload): the
    /// capacity is a per-container delivery budget per clock window, so
    /// shed/deferred totals are comparable across runtimes. An optional
    /// [`PressureSignal`] is notified on every deferral or shed.
    pub fn set_overload(&mut self, config: MailboxConfig, pressure: Option<Arc<PressureSignal>>) {
        self.overload = Some((config, pressure));
    }

    /// Read access to the directory before the threads start.
    pub fn df(&self) -> &DirectoryFacilitator {
        &self.df
    }

    /// Number of containers registered so far.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Pre-start directory registration (scenario setup); the directory
    /// moves behind the shared lock when [`start`](Self::start) runs.
    pub fn df_mut(&mut self) -> &mut DirectoryFacilitator {
        &mut self.df
    }

    /// Adds a container.
    ///
    /// # Panics
    ///
    /// Panics on duplicate container names.
    pub fn add_container(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        assert!(
            self.containers.insert(name.clone(), Vec::new()).is_none(),
            "container `{name}` already exists"
        );
        self
    }

    /// Removes a container before the threads start. With `cleanup_df`,
    /// its agents' services and its profile leave the directory too
    /// (orderly removal); without, the directory keeps the stale entries
    /// (silent crash). Returns the removed agents' ids.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchContainer`] if absent.
    pub fn remove_container(
        &mut self,
        name: &str,
        cleanup_df: bool,
    ) -> Result<Vec<AgentId>, PlatformError> {
        let roster = self
            .containers
            .remove(name)
            .ok_or_else(|| PlatformError::NoSuchContainer(name.to_owned()))?;
        let ids: Vec<AgentId> = roster.into_iter().map(|(id, _)| id).collect();
        if cleanup_df {
            for id in &ids {
                self.df.deregister(id);
            }
            self.df.deregister_container(name);
        }
        Ok(ids)
    }

    /// Registers an agent to run in `container` (threads start later).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] for unknown containers or duplicate
    /// agent names.
    pub fn spawn(
        &mut self,
        container: &str,
        local_name: &str,
        agent: impl Agent + 'static,
    ) -> Result<AgentId, PlatformError> {
        let id = AgentId::with_platform(local_name, &self.name);
        if self
            .containers
            .values()
            .flatten()
            .any(|(existing, _)| existing == &id)
        {
            return Err(PlatformError::DuplicateAgent(id));
        }
        let slot = self
            .containers
            .get_mut(container)
            .ok_or_else(|| PlatformError::NoSuchContainer(container.to_owned()))?;
        slot.push((id.clone(), Box::new(agent)));
        Ok(id)
    }

    /// Starts one thread per container plus a router thread, runs every
    /// agent's `setup`, and returns the running handle.
    pub fn start(self) -> RunningPlatform {
        let overload = self.overload.map(|(config, pressure)| {
            MailboxTracker::new(config, pressure, self.telemetry.clone())
        });
        let shared = Arc::new(SharedState {
            df: Mutex::new(self.df),
            routes: Mutex::new(RoutingTable::default()),
            in_flight: AtomicI64::new(0),
            delivered: AtomicU64::new(0),
            clock_ms: AtomicU64::new(0),
            dead_letters: Mutex::new(Vec::new()),
            transport: Mutex::new(self.transport),
            net: Mutex::new(self.net),
            requeue_dead_letters: AtomicBool::new(self.requeue_dead_letters),
            requeue_ledger: Mutex::new(Vec::new()),
            requeue_parked: Mutex::new(Vec::new()),
            requeued_total: AtomicU64::new(0),
            dead_letter_overflow: AtomicU64::new(0),
            requeue_overflow: AtomicU64::new(0),
            overload: Mutex::new(overload),
            telemetry: self.telemetry,
        });

        // Router: one inbox; the routing table knows which container
        // channel owns each id.
        let (router_tx, router_rx) = unbounded::<SharedMessage>();
        let mut threads: Vec<JoinHandle<()>> = Vec::new();

        {
            let mut routes = shared.routes.lock();
            for (container_name, agents) in self.containers {
                let (tx, rx) = unbounded::<ContainerMsg>();
                routes.txs.insert(container_name.clone(), tx);
                for (id, _) in &agents {
                    routes.residents.insert(id.clone(), container_name.clone());
                }
                threads.push(spawn_container_thread(
                    container_name,
                    agents,
                    rx,
                    router_tx.clone(),
                    Arc::clone(&shared),
                ));
            }
        }

        // Router thread: drains the shared inbox in batches, groups each
        // batch per owning container, and flushes one Deliver per
        // container per round — dead-lettering (or requeueing) unknown
        // receivers and applying transport faults along the way.
        let router_shared = Arc::clone(&shared);
        let router = std::thread::spawn(move || {
            // Per-container telemetry scopes, resolved lazily so routing
            // rarely takes the registry lock.
            let mut scopes: BTreeMap<String, Arc<ContainerScope>> = BTreeMap::new();
            // Exits when every sender (containers + the handle) is gone.
            while let Ok(first) = router_rx.recv() {
                // Fold whatever else is already queued into this round.
                let mut batch = vec![first];
                while batch.len() < ROUTER_BATCH_MAX {
                    match router_rx.try_recv() {
                        Some(message) => batch.push(message),
                        None => break,
                    }
                }
                let now = router_shared.clock_ms.load(Ordering::SeqCst);
                let fault = router_shared.transport.lock().clone();
                // Resolve the whole batch under ONE routes acquisition,
                // snapshotting the target channels, and deliver after the
                // lock is dropped — a slow container or a concurrent
                // spawn/kill never serialises behind a fan-out, and vice
                // versa. Failed legs are collected (not handled inline)
                // so the lock scope stays minimal.
                let mut failed: Vec<(SharedMessage, AgentId)> = Vec::new();
                let (mut per_container, txs) = {
                    let routes = router_shared.routes.lock();
                    let mut per_container = group_into_batches(
                        &batch,
                        &fault,
                        |receiver| routes.residents.get(receiver).cloned(),
                        |message, receiver| {
                            failed.push((SharedMessage::clone(message), receiver.clone()))
                        },
                    );
                    // The network adversary runs under the routes lock
                    // (lock order: routes before net, everywhere) so the
                    // partition check resolves sender containers against
                    // the same snapshot the batch was grouped with.
                    {
                        let mut net = router_shared.net.lock();
                        if let Some(net) = net.as_mut() {
                            let mut survived: BTreeMap<String, ContainerBatch> = BTreeMap::new();
                            for (container, legs) in per_container {
                                let legs = net.process_batch(
                                    &container,
                                    legs,
                                    |agent| routes.residents.get(agent).cloned(),
                                    now,
                                    router_shared.telemetry.as_deref(),
                                );
                                if !legs.is_empty() {
                                    survived.insert(container, legs);
                                }
                            }
                            per_container = survived;
                        }
                    }
                    let txs: BTreeMap<String, Sender<ContainerMsg>> = per_container
                        .keys()
                        .filter_map(|c| routes.txs.get(c).map(|tx| (c.clone(), tx.clone())))
                        .collect();
                    (per_container, txs)
                };
                for (message, receiver) in &failed {
                    router_shared.fail_delivery(message, receiver, now);
                }
                // Overload admission: one lock acquisition per routing
                // round, class-aware shedding decided batch-at-a-time
                // (alert exemption preserved — see `admit_batch`).
                // Deferred legs re-enter at the next clock window
                // (advance_clock), shed legs are gone.
                {
                    let mut overload = router_shared.overload.lock();
                    if let Some(tracker) = overload.as_mut() {
                        let admitted: BTreeMap<String, ContainerBatch> = per_container
                            .into_iter()
                            .map(|(container, legs)| {
                                let legs = tracker.admit_batch(&container, legs, now);
                                (container, legs)
                            })
                            .filter(|(_, legs)| !legs.is_empty())
                            .collect();
                        per_container = admitted;
                    }
                }
                for (container, legs) in per_container {
                    if let Some(t) = &router_shared.telemetry {
                        let scope = scopes
                            .entry(container.clone())
                            .or_insert_with(|| t.container_scope(&container));
                        for (message, receivers) in &legs {
                            for receiver in receivers {
                                t.message_delivered(message, receiver, scope, now);
                            }
                        }
                        t.batch_flushed(batch_legs(&legs));
                    }
                    router_shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    let sent = match txs.get(&container) {
                        Some(tx) => tx.send(ContainerMsg::Deliver(legs)).map_err(|e| e.0),
                        None => Err(ContainerMsg::Deliver(legs)),
                    };
                    if let Err(ContainerMsg::Deliver(legs)) = sent {
                        // The container died between resolution (lock
                        // dropped) and this send: balance the gauge and
                        // fail every leg, exactly as the container's own
                        // stop-drain would have.
                        router_shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                        for (message, receivers) in &legs {
                            for receiver in receivers {
                                router_shared.fail_delivery(message, receiver, now);
                            }
                        }
                    }
                }
                // The router finished handling these inbox entries.
                router_shared
                    .in_flight
                    .fetch_sub(batch.len() as i64, Ordering::SeqCst);
            }
        });

        RunningPlatform {
            name: self.name,
            shared,
            router_tx,
            threads,
            router: Some(router),
        }
    }
}

fn spawn_container_thread(
    container_name: String,
    mut agents: AgentRoster,
    rx: Receiver<ContainerMsg>,
    router_tx: Sender<SharedMessage>,
    shared: Arc<SharedState>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // Telemetry handles, resolved once per thread; steady-state
        // recording is pure atomics.
        let scope = shared
            .telemetry
            .as_ref()
            .map(|t| t.container_scope(&container_name));
        // Setup phase. Contexts take the shared directory lock lazily:
        // an agent that never consults it runs lock-free.
        let mut outbox = Vec::new();
        for (id, agent) in agents.iter_mut() {
            let now = shared.clock_ms.load(Ordering::SeqCst);
            let mut ctx = AgentCtx::new_shared(id, &container_name, now, &mut outbox, &shared.df);
            agent.setup(&mut ctx);
        }
        record_sends(&shared, scope.as_deref(), &outbox, 0, None);
        flush(&mut outbox, &router_tx, &shared);

        loop {
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(ContainerMsg::Deliver(legs)) => {
                    let now = shared.clock_ms.load(Ordering::SeqCst);
                    for (message, targets) in &legs {
                        for receiver in targets {
                            let Some((id, agent)) =
                                agents.iter_mut().find(|(id, _)| id == receiver)
                            else {
                                continue;
                            };
                            let span = match (&shared.telemetry, &scope) {
                                (Some(t), Some(scope)) => t.start_handle(message, id, scope),
                                _ => None,
                            };
                            let started =
                                shared.telemetry.as_ref().map(|_| std::time::Instant::now());
                            let sent_from = outbox.len();
                            {
                                let mut ctx = AgentCtx::new_shared(
                                    id,
                                    &container_name,
                                    now,
                                    &mut outbox,
                                    &shared.df,
                                );
                                agent.on_message(message, &mut ctx);
                            }
                            shared.delivered.fetch_add(1, Ordering::SeqCst);
                            if let (Some(t), Some(scope)) = (&shared.telemetry, &scope) {
                                let busy_ns = started
                                    .map(|s| s.elapsed().as_nanos() as u64)
                                    .unwrap_or_default();
                                t.finish_handle(span, scope, now, busy_ns);
                            }
                            record_sends(&shared, scope.as_deref(), &outbox, sent_from, span);
                        }
                    }
                    flush(&mut outbox, &router_tx, &shared);
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Ok(ContainerMsg::Tick) => {
                    tick_all(
                        &mut agents,
                        &container_name,
                        scope.as_deref(),
                        &mut outbox,
                        &shared,
                    );
                    flush(&mut outbox, &router_tx, &shared);
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Ok(ContainerMsg::Spawn(id, mut agent)) => {
                    let now = shared.clock_ms.load(Ordering::SeqCst);
                    let sent_from = outbox.len();
                    {
                        let mut ctx = AgentCtx::new_shared(
                            &id,
                            &container_name,
                            now,
                            &mut outbox,
                            &shared.df,
                        );
                        agent.setup(&mut ctx);
                    }
                    agents.push((id, agent));
                    record_sends(&shared, scope.as_deref(), &outbox, sent_from, None);
                    flush(&mut outbox, &router_tx, &shared);
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Ok(ContainerMsg::Stop) => {
                    // Crash/stop: whatever is still queued behind the
                    // stop marker is undeliverable — account for it so
                    // quiescence tracking stays balanced. Keep draining
                    // through a short quiet window: the router sends
                    // batches after dropping the routing lock, so one
                    // more batch may land moments after the Stop.
                    let now = shared.clock_ms.load(Ordering::SeqCst);
                    while let Ok(leftover) = rx.recv_timeout(Duration::from_millis(50)) {
                        match leftover {
                            ContainerMsg::Deliver(legs) => {
                                for (message, targets) in &legs {
                                    for receiver in targets {
                                        shared.fail_delivery(message, receiver, now);
                                    }
                                }
                                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                            }
                            ContainerMsg::Tick | ContainerMsg::Spawn(..) => {
                                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                            }
                            ContainerMsg::Stop => {}
                        }
                    }
                    break;
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    // Idle: give agents their tick.
                    tick_all(
                        &mut agents,
                        &container_name,
                        scope.as_deref(),
                        &mut outbox,
                        &shared,
                    );
                    flush(&mut outbox, &router_tx, &shared);
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        }
    })
}

fn tick_all(
    agents: &mut AgentRoster,
    container_name: &str,
    scope: Option<&ContainerScope>,
    outbox: &mut Vec<SharedMessage>,
    shared: &SharedState,
) {
    let now = shared.clock_ms.load(Ordering::SeqCst);
    let sent_from = outbox.len();
    for (id, agent) in agents.iter_mut() {
        let mut ctx = AgentCtx::new_shared(id, container_name, now, outbox, &shared.df);
        agent.on_tick(&mut ctx);
    }
    record_sends(shared, scope, outbox, sent_from, None);
}

/// Traces `outbox[sent_from..]` as sends parented to `span` (tick and
/// setup sends pass `None`: they open new conversations) and counts
/// them into the container's sent/stage counters.
fn record_sends(
    shared: &SharedState,
    scope: Option<&ContainerScope>,
    outbox: &[SharedMessage],
    sent_from: usize,
    span: Option<agentgrid_telemetry::SpanId>,
) {
    if let Some(t) = &shared.telemetry {
        let now = shared.clock_ms.load(Ordering::SeqCst);
        for sent in &outbox[sent_from..] {
            if let Some(scope) = scope {
                scope.on_sent();
            }
            t.message_sent(sent, span, now);
        }
    }
}

fn flush(outbox: &mut Vec<SharedMessage>, router_tx: &Sender<SharedMessage>, shared: &SharedState) {
    for message in outbox.drain(..) {
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let _ = router_tx.send(message);
    }
}

/// Handle to a started [`ThreadedPlatform`].
pub struct RunningPlatform {
    name: String,
    shared: Arc<SharedState>,
    router_tx: Sender<SharedMessage>,
    threads: Vec<JoinHandle<()>>,
    router: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RunningPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningPlatform")
            .field("containers", &self.container_count())
            .field("in_flight", &self.shared.in_flight.load(Ordering::SeqCst))
            .finish()
    }
}

impl RunningPlatform {
    /// Sends a message into the platform from outside. Accepts a plain
    /// [`AclMessage`](agentgrid_acl::AclMessage) or a [`SharedMessage`].
    pub fn post(&mut self, message: impl Into<SharedMessage>) {
        let message = message.into();
        if let Some(t) = &self.shared.telemetry {
            let now = self.shared.clock_ms.load(Ordering::SeqCst);
            t.message_sent(&message, None, now);
        }
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let _ = self.router_tx.send(message);
    }

    /// Queues one `on_tick` round in every container (stepped driving —
    /// simulation loops advance the clock, tick, then
    /// [`wait_idle`](Self::wait_idle)). Containers also tick on their
    /// own whenever their inbox stays empty for ~20 ms.
    pub fn broadcast_tick(&self) {
        let routes = self.shared.routes.lock();
        for tx in routes.txs.values() {
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(ContainerMsg::Tick);
        }
    }

    /// Advances the shared simulated clock (agents read it on their next
    /// callback). A forward move also retries messages parked by the
    /// requeue-once dead-letter policy.
    pub fn advance_clock(&self, now_ms: u64) {
        let before = self.shared.clock_ms.swap(now_ms, Ordering::SeqCst);
        if now_ms <= before {
            return;
        }
        // New clock window: drain legs the overload tracker deferred,
        // consuming the fresh per-window budget. The overload lock is
        // released before the routes lock is taken (the router never
        // holds both either, so no deadlock), and — like the router —
        // deliveries are grouped into per-container batches resolved
        // under one routes acquisition and sent after it is dropped.
        let due = {
            let mut overload = self.shared.overload.lock();
            match overload.as_mut() {
                Some(tracker) => tracker.begin_window(),
                None => Vec::new(),
            }
        };
        self.deliver_due_legs(due, now_ms);
        // Delayed and retransmitted legs due by now re-enter. Lock
        // order: routes before net, matching the router.
        let net_due = {
            let routes = self.shared.routes.lock();
            let mut net = self.shared.net.lock();
            match net.as_mut() {
                Some(net) => net.due(
                    now_ms,
                    |agent| routes.residents.get(agent).cloned(),
                    self.shared.telemetry.as_deref(),
                ),
                None => Vec::new(),
            }
        };
        self.deliver_due_legs(net_due, now_ms);
        let parked: Vec<SharedMessage> = std::mem::take(&mut *self.shared.requeue_parked.lock());
        for message in parked {
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let _ = self.router_tx.send(message);
        }
    }

    /// Delivers `(message, receiver)` legs that waited outside the
    /// normal routing path (overload deferrals, delayed/retransmitted
    /// net legs): resolve under one routes acquisition, batch per
    /// container, send after the lock drops, and fail the unresolvable.
    fn deliver_due_legs(&self, due: Vec<(SharedMessage, AgentId)>, now_ms: u64) {
        if due.is_empty() {
            return;
        }
        let mut failed: Vec<(SharedMessage, AgentId)> = Vec::new();
        let mut batches: BTreeMap<String, (Sender<ContainerMsg>, ContainerBatch)> = BTreeMap::new();
        {
            let routes = self.shared.routes.lock();
            for (message, receiver) in due {
                let target = routes
                    .residents
                    .get(&receiver)
                    .and_then(|container| routes.txs.get(container).map(|tx| (container, tx)));
                match target {
                    Some((container, tx)) => {
                        if let Some(t) = &self.shared.telemetry {
                            let scope = t.container_scope(container);
                            t.message_delivered(&message, &receiver, &scope, now_ms);
                        }
                        batches
                            .entry(container.clone())
                            .or_insert_with(|| (tx.clone(), Vec::new()))
                            .1
                            .push((message, vec![receiver]));
                    }
                    None => failed.push((message, receiver)),
                }
            }
        }
        for (message, receiver) in &failed {
            self.shared.fail_delivery(message, receiver, now_ms);
        }
        for (tx, legs) in batches.into_values() {
            if let Some(t) = &self.shared.telemetry {
                t.batch_flushed(batch_legs(&legs));
            }
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            if let Err(err) = tx.send(ContainerMsg::Deliver(legs)) {
                // Killed between resolution and send: balance the
                // gauge and fail the legs.
                self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                if let ContainerMsg::Deliver(legs) = err.0 {
                    for (message, receivers) in &legs {
                        for receiver in receivers {
                            self.shared.fail_delivery(message, receiver, now_ms);
                        }
                    }
                }
            }
        }
    }

    /// Locked access to the shared directory.
    pub fn with_df<R>(&self, f: impl FnOnce(&mut DirectoryFacilitator) -> R) -> R {
        f(&mut self.shared.df.lock())
    }

    /// Injects (or clears) a transport fault, effective for messages the
    /// router handles from now on, with the legacy **replace**
    /// semantics. Composable windows go through
    /// [`net_command`](Self::net_command).
    pub fn set_transport_fault(&self, fault: TransportFault) {
        *self.shared.transport.lock() = FaultSet::just(fault);
    }

    /// Applies one command against the network layer, effective for
    /// messages the router handles from now on (see [`crate::net`]).
    pub fn net_command(&self, command: NetCommand) {
        match command {
            NetCommand::AddFault(fault) => self.shared.transport.lock().insert(fault),
            NetCommand::RemoveFault(fault) => self.shared.transport.lock().remove(&fault),
            NetCommand::ClearFaults => self.shared.transport.lock().clear(),
            other => self
                .shared
                .net
                .lock()
                .get_or_insert_with(|| NetAdversary::new(0))
                .command(other),
        }
    }

    /// Counters of the network adversary/reliability layer; `None`
    /// while untouched.
    pub fn net_stats(&self) -> Option<NetStats> {
        self.shared.net.lock().as_ref().map(NetAdversary::stats)
    }

    /// Switches the dead-letter requeue policy mid-run.
    pub fn set_dead_letter_requeue(&self, enabled: bool) {
        self.shared
            .requeue_dead_letters
            .store(enabled, Ordering::SeqCst);
    }

    /// Messages requeued under the dead-letter requeue policy so far.
    /// Monotone total: entries drained from the ledger after their retry
    /// resolves still count.
    pub fn requeued_count(&self) -> usize {
        self.shared.requeued_total.load(Ordering::Relaxed) as usize
    }

    /// Retries skipped because the requeue bookkeeping hit
    /// [`REQUEUE_CAP`]; those legs dead-lettered directly.
    pub fn requeue_overflow(&self) -> u64 {
        self.shared.requeue_overflow.load(Ordering::Relaxed)
    }

    /// Overload counters (shed per class, deferrals, peak backlog), if
    /// bounded mailboxes were configured before start.
    pub fn overload_stats(&self) -> Option<OverloadStats> {
        self.shared
            .overload
            .lock()
            .as_ref()
            .map(MailboxTracker::stats)
    }

    /// Adds an empty container to the running platform: its thread
    /// starts immediately and the router can target it at once.
    ///
    /// # Panics
    ///
    /// Panics on duplicate container names.
    pub fn add_container(&mut self, name: &str) {
        let (tx, rx) = unbounded::<ContainerMsg>();
        {
            let mut routes = self.shared.routes.lock();
            assert!(
                !routes.txs.contains_key(name),
                "container `{name}` already exists"
            );
            routes.txs.insert(name.to_owned(), tx);
        }
        self.threads.push(spawn_container_thread(
            name.to_owned(),
            Vec::new(),
            rx,
            self.router_tx.clone(),
            Arc::clone(&self.shared),
        ));
    }

    /// Spawns an agent into a running container. The spawn command is
    /// enqueued ahead of any message routed to the new agent (the
    /// routing table is updated under the same lock), so no delivery can
    /// observe the agent before its `setup` ran.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] for unknown containers or duplicate
    /// agent names.
    pub fn spawn(
        &mut self,
        container: &str,
        local_name: &str,
        agent: impl Agent + 'static,
    ) -> Result<AgentId, PlatformError> {
        let id = AgentId::with_platform(local_name, &self.name);
        let mut routes = self.shared.routes.lock();
        if routes.residents.contains_key(&id) {
            return Err(PlatformError::DuplicateAgent(id));
        }
        let tx = routes
            .txs
            .get(container)
            .ok_or_else(|| PlatformError::NoSuchContainer(container.to_owned()))?;
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let _ = tx.send(ContainerMsg::Spawn(id.clone(), Box::new(agent)));
        routes.residents.insert(id.clone(), container.to_owned());
        Ok(id)
    }

    /// Removes a container abruptly mid-run. Messages already queued to
    /// it fail (requeue-once policy applies), future messages to its
    /// agents dead-letter at the router. With `cleanup_df` the agents'
    /// services and the container profile leave the directory (orderly
    /// kill); without, the directory keeps the stale entries — a
    /// **silent** crash that only heartbeat-staleness detection notices.
    /// Returns the killed agents' ids.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchContainer`] if absent.
    pub fn kill_container(
        &mut self,
        name: &str,
        cleanup_df: bool,
    ) -> Result<Vec<AgentId>, PlatformError> {
        let (tx, ids) = {
            let mut routes = self.shared.routes.lock();
            let tx = routes
                .txs
                .remove(name)
                .ok_or_else(|| PlatformError::NoSuchContainer(name.to_owned()))?;
            let ids: Vec<AgentId> = routes
                .residents
                .iter()
                .filter(|(_, c)| c.as_str() == name)
                .map(|(id, _)| id.clone())
                .collect();
            routes.residents.retain(|_, c| c != name);
            (tx, ids)
        };
        // FIFO: the stop marker lands behind everything already queued;
        // the thread drains and fails those deliveries, then exits.
        let _ = tx.send(ContainerMsg::Stop);
        if cleanup_df {
            let mut df = self.shared.df.lock();
            for id in &ids {
                df.deregister(id);
            }
            df.deregister_container(name);
        }
        Ok(ids)
    }

    /// Blocks until no message is queued or being processed anywhere.
    /// Returns `false` on a 5-second timeout (deadlock guard).
    pub fn wait_idle(&self) -> bool {
        for _ in 0..500 {
            if self.shared.in_flight.load(Ordering::SeqCst) == 0 {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.shared.delivered.load(Ordering::SeqCst)
    }

    /// Messages delivered so far — same name as
    /// [`Platform::delivered_count`](crate::Platform::delivered_count)
    /// so generic code reads identically on either runtime.
    pub fn delivered_count(&self) -> u64 {
        self.delivered()
    }

    /// Undeliverable messages captured so far (one entry per unreachable
    /// receiver). The count stays exact past [`DEAD_LETTER_CAP`]; only
    /// the stored copies are bounded.
    pub fn dead_letter_count(&self) -> usize {
        self.shared.dead_letters.lock().len()
            + self.shared.dead_letter_overflow.load(Ordering::Relaxed) as usize
    }

    /// Dead letters dropped (counted but not stored) past
    /// [`DEAD_LETTER_CAP`].
    pub fn dead_letter_overflow(&self) -> u64 {
        self.shared.dead_letter_overflow.load(Ordering::Relaxed)
    }

    /// Snapshot of the undeliverable messages captured so far — same
    /// introspection surface as
    /// [`Platform::dead_letters`](crate::Platform::dead_letters).
    pub fn dead_letters(&self) -> Vec<SharedMessage> {
        self.shared.dead_letters.lock().clone()
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<TelemetryHandle> {
        self.shared.telemetry.clone()
    }

    /// Number of containers (threads) running.
    pub fn container_count(&self) -> usize {
        self.shared.routes.lock().txs.len()
    }

    /// Stops every thread and returns the run statistics.
    pub fn shutdown(mut self) -> RunStats {
        {
            let routes = self.shared.routes.lock();
            for tx in routes.txs.values() {
                let _ = tx.send(ContainerMsg::Stop);
            }
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // With the containers joined, dropping our sender leaves the
        // router without producers; its `recv` errors and it exits.
        if let Some(router) = self.router.take() {
            drop(self.router_tx);
            let _ = router.join();
        }
        RunStats {
            delivered: self.shared.delivered.load(Ordering::SeqCst),
            dead_letters: std::mem::take(&mut self.shared.dead_letters.lock()),
            telemetry: self.shared.telemetry.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::{AclMessage, Performative, Value};
    use std::sync::atomic::AtomicUsize;

    /// Replies `pong` to every message and counts deliveries globally.
    struct Ponger {
        hits: Arc<AtomicUsize>,
    }

    impl Agent for Ponger {
        fn on_message(&mut self, msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
            self.hits.fetch_add(1, Ordering::SeqCst);
            ctx.send(msg.reply(Performative::Inform, Value::symbol("pong")));
        }
    }

    /// Forwards each received *request* to a target; replies coming back
    /// are absorbed (otherwise forwarder and ponger would loop forever).
    struct Forwarder {
        target: AgentId,
    }

    impl Agent for Forwarder {
        fn on_message(&mut self, msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
            if msg.performative() != Performative::Request {
                return;
            }
            let forward = AclMessage::builder(Performative::Request)
                .sender(ctx.self_id().clone())
                .receiver(self.target.clone())
                .content(msg.content().clone())
                .build()
                .unwrap();
            ctx.send(forward);
        }
    }

    fn ping(to: AgentId) -> AclMessage {
        AclMessage::builder(Performative::Request)
            .sender(AgentId::new("test-driver"))
            .receiver(to)
            .content(Value::symbol("ping"))
            .build()
            .unwrap()
    }

    #[test]
    fn messages_cross_container_threads() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a").add_container("b");
        let ponger = platform
            .spawn(
                "b",
                "ponger",
                Ponger {
                    hits: Arc::clone(&hits),
                },
            )
            .unwrap();
        platform
            .spawn(
                "a",
                "fwd",
                Forwarder {
                    target: ponger.clone(),
                },
            )
            .unwrap();
        let mut handle = platform.start();
        for _ in 0..10 {
            handle.post(ping(AgentId::with_platform("fwd", "rt")));
        }
        assert!(handle.wait_idle(), "must quiesce");
        let stats = handle.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 10);
        // 10 to fwd + 10 to ponger + 10 pong replies back to fwd.
        assert_eq!(stats.delivered, 30);
        assert!(stats.dead_letters.is_empty());
    }

    #[test]
    fn unknown_receiver_dead_letters() {
        let platform = {
            let mut p = ThreadedPlatform::new("rt");
            p.add_container("a");
            p
        };
        let mut handle = platform.start();
        handle.post(ping(AgentId::new("ghost@rt")));
        assert!(handle.wait_idle());
        let stats = handle.shutdown();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dead_letters.len(), 1);
    }

    #[test]
    fn clock_is_visible_to_agents() {
        struct ClockReader {
            seen: Arc<AtomicUsize>,
        }
        impl Agent for ClockReader {
            fn on_message(&mut self, _msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
                self.seen.store(ctx.now_ms() as usize, Ordering::SeqCst);
            }
        }
        let seen = Arc::new(AtomicUsize::new(0));
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a");
        let id = platform
            .spawn(
                "a",
                "reader",
                ClockReader {
                    seen: Arc::clone(&seen),
                },
            )
            .unwrap();
        let mut handle = platform.start();
        handle.advance_clock(12_345);
        handle.post(ping(id));
        assert!(handle.wait_idle());
        handle.shutdown();
        assert_eq!(seen.load(Ordering::SeqCst), 12_345);
    }

    #[test]
    fn df_is_shared_across_threads() {
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a");
        struct Registrar;
        impl Agent for Registrar {
            fn setup(&mut self, ctx: &mut AgentCtx<'_>) {
                let id = ctx.self_id().clone();
                ctx.df().register_service(id, "analysis", ["cpu"]);
            }
        }
        platform.spawn("a", "reg", Registrar).unwrap();
        let handle = platform.start();
        assert!(handle.wait_idle());
        let count = handle.with_df(|df| df.service_count());
        assert_eq!(count, 1);
        handle.shutdown();
    }

    #[test]
    fn duplicate_and_missing_errors_before_start() {
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a");
        platform
            .spawn(
                "a",
                "x",
                Ponger {
                    hits: Arc::new(AtomicUsize::new(0)),
                },
            )
            .unwrap();
        assert!(matches!(
            platform.spawn(
                "a",
                "x",
                Ponger {
                    hits: Arc::new(AtomicUsize::new(0))
                }
            ),
            Err(PlatformError::DuplicateAgent(_))
        ));
        assert!(matches!(
            platform.spawn(
                "nope",
                "y",
                Ponger {
                    hits: Arc::new(AtomicUsize::new(0))
                }
            ),
            Err(PlatformError::NoSuchContainer(_))
        ));
    }

    #[test]
    fn late_spawn_into_running_container_receives_messages() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a");
        let mut handle = platform.start();
        let id = handle
            .spawn(
                "a",
                "late",
                Ponger {
                    hits: Arc::clone(&hits),
                },
            )
            .unwrap();
        handle.post(ping(id));
        assert!(handle.wait_idle());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(matches!(
            handle.spawn(
                "a",
                "late",
                Ponger {
                    hits: Arc::clone(&hits)
                }
            ),
            Err(PlatformError::DuplicateAgent(_))
        ));
        handle.shutdown();
    }

    #[test]
    fn kill_container_mid_run_dead_letters_future_mail() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a");
        let id = platform
            .spawn(
                "a",
                "victim",
                Ponger {
                    hits: Arc::clone(&hits),
                },
            )
            .unwrap();
        let mut handle = platform.start();
        handle.post(ping(id.clone()));
        assert!(handle.wait_idle());
        assert_eq!(hits.load(Ordering::SeqCst), 1);

        let killed = handle.kill_container("a", true).unwrap();
        assert_eq!(killed, vec![id.clone()]);
        assert_eq!(handle.container_count(), 0);
        handle.post(ping(id));
        assert!(handle.wait_idle());
        // 1 ping + its pong (dead-lettered to "test-driver")... the pong
        // dead-letters, plus the post-kill ping dead-letters.
        assert_eq!(hits.load(Ordering::SeqCst), 1, "no delivery after kill");
        assert!(handle.dead_letter_count() >= 2);
        assert!(matches!(
            handle.kill_container("a", true),
            Err(PlatformError::NoSuchContainer(_))
        ));
        handle.shutdown();
    }

    #[test]
    fn container_restart_restores_delivery() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a");
        let id = platform
            .spawn(
                "a",
                "phoenix",
                Ponger {
                    hits: Arc::clone(&hits),
                },
            )
            .unwrap();
        let mut handle = platform.start();
        handle.kill_container("a", false).unwrap();
        handle.add_container("a");
        let respawned = handle
            .spawn(
                "a",
                "phoenix",
                Ponger {
                    hits: Arc::clone(&hits),
                },
            )
            .unwrap();
        assert_eq!(respawned, id);
        handle.post(ping(respawned));
        assert!(handle.wait_idle());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        handle.shutdown();
    }

    #[test]
    fn transport_faults_drop_silently() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a");
        let id = platform
            .spawn(
                "a",
                "target",
                Ponger {
                    hits: Arc::clone(&hits),
                },
            )
            .unwrap();
        let mut handle = platform.start();
        handle.set_transport_fault(TransportFault::DropTo(id.clone()));
        handle.post(ping(id.clone()));
        assert!(handle.wait_idle());
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert_eq!(handle.dead_letter_count(), 0, "drops are silent");

        handle.set_transport_fault(TransportFault::None);
        handle.post(ping(id));
        assert!(handle.wait_idle());
        assert_eq!(hits.load(Ordering::SeqCst), 1, "healed transport delivers");
        handle.shutdown();
    }

    #[test]
    fn requeue_once_retries_after_clock_advance_then_dead_letters() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut platform = ThreadedPlatform::new("rt");
        platform.add_container("a");
        platform.set_dead_letter_requeue(true);
        let mut handle = platform.start();

        // No such agent yet: first failure parks a narrowed retry.
        handle.post(ping(AgentId::with_platform("phoenix", "rt")));
        assert!(handle.wait_idle());
        assert_eq!(handle.dead_letter_count(), 0, "first failure is parked");
        assert_eq!(handle.requeued_count(), 1);

        // The agent appears before the retry fires: message recovered.
        handle
            .spawn(
                "a",
                "phoenix",
                Ponger {
                    hits: Arc::clone(&hits),
                },
            )
            .unwrap();
        handle.advance_clock(1_000);
        assert!(handle.wait_idle());
        assert_eq!(hits.load(Ordering::SeqCst), 1);

        // A retry that fails again dead-letters for real: the ping to a
        // ghost agent, and phoenix's pong to the outside driver (parked
        // above), both exhaust their single retry on this advance.
        handle.post(ping(AgentId::with_platform("ghost", "rt")));
        assert!(handle.wait_idle());
        handle.advance_clock(2_000);
        assert!(handle.wait_idle());
        assert_eq!(handle.dead_letter_count(), 2);
        handle.shutdown();
    }
}
