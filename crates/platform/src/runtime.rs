//! The [`Runtime`] abstraction: one wiring, two execution models.
//!
//! Everything above the platform layer (the management grids, baselines,
//! benchmarks) builds scenarios out of the same four verbs — create
//! containers, spawn agents, register directory entries, post messages —
//! and then drives the system to quiescence at successive simulated
//! times. [`Runtime`] captures exactly that surface, so scenario code
//! written once runs on either execution model:
//!
//! * [`Platform`] — the deterministic single-threaded stepper; name-order
//!   iteration makes runs exactly reproducible.
//! * [`ThreadedRuntime`] — one OS thread per container over
//!   [`ThreadedPlatform`]; deployment-shaped, nondeterministic
//!   cross-container ordering, per-channel FIFO preserved.
//!
//! Agent code ([`Agent`] impls) is identical on both; only the driver
//! changes. Delivery guarantees shared by both runtimes:
//!
//! * every reachable receiver of a multicast gets the message **exactly
//!   once**, and all receivers observe the **same shared allocation**
//!   ([`SharedMessage`]) — fan-out never deep-clones content;
//! * each unreachable receiver produces exactly one dead letter;
//! * messages between one (sender, receiver) pair stay in order.
//!
//! # Examples
//!
//! ```
//! use agentgrid_platform::runtime::{Runtime, ThreadedRuntime};
//! use agentgrid_platform::{Agent, Platform};
//!
//! struct Noop;
//! impl Agent for Noop {}
//!
//! fn build<R: Runtime>() -> R {
//!     let mut rt = R::create("grid");
//!     rt.add_container("c1");
//!     rt.spawn_agent("c1", "a", Noop).unwrap();
//!     rt
//! }
//!
//! let mut deterministic: Platform = build();
//! deterministic.run_until_idle(0);
//! let mut threaded: ThreadedRuntime = build();
//! Runtime::run_until_idle(&mut threaded, 0);
//! ```

use std::sync::Arc;

use agentgrid_acl::{AgentId, SharedMessage};
use agentgrid_telemetry::TelemetryHandle;

use crate::agent::Agent;
use crate::net::{NetCommand, NetStats};
use crate::overload::{MailboxConfig, OverloadStats, PressureSignal};
use crate::threaded::{RunStats, RunningPlatform, ThreadedPlatform};
use crate::{DirectoryFacilitator, Platform, PlatformError, TransportFault};

/// Common driver surface of the deterministic and threaded runtimes.
///
/// See the [module docs](self) for the contract. The trait is not object
/// safe (it has constructor and generic methods); use it as a static
/// bound: `fn scenario<R: Runtime>(rt: &mut R)`.
pub trait Runtime {
    /// Creates an empty runtime; `name` becomes the `@platform` suffix
    /// of spawned agent ids.
    fn create(name: &str) -> Self
    where
        Self: Sized;

    /// Adds an empty container.
    ///
    /// # Panics
    ///
    /// Panics if the container already exists, or (threaded) if the
    /// runtime has already started executing.
    fn add_container(&mut self, name: &str);

    /// Spawns an agent into a container under `local_name`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] for unknown containers, duplicate agent
    /// names, or (threaded) spawning after execution has started.
    fn spawn_agent(
        &mut self,
        container: &str,
        local_name: &str,
        agent: impl Agent + 'static,
    ) -> Result<AgentId, PlatformError>
    where
        Self: Sized;

    /// Runs `f` with exclusive access to the directory facilitator.
    fn with_df<T>(&mut self, f: impl FnOnce(&mut DirectoryFacilitator) -> T) -> T
    where
        Self: Sized;

    /// Sends a message from outside any agent.
    fn post(&mut self, message: impl Into<SharedMessage>)
    where
        Self: Sized;

    /// Advances the clock to `now_ms` and drives the runtime until no
    /// message is queued or being processed. Returns how many
    /// delivery/tick rounds it took.
    fn run_until_idle(&mut self, now_ms: u64) -> usize;

    /// Total messages delivered to agents so far.
    fn delivered_count(&self) -> u64;

    /// Messages that could not be delivered so far (one per unreachable
    /// receiver).
    fn dead_letter_count(&self) -> usize;

    /// Number of containers.
    fn container_count(&self) -> usize;

    /// Removes a container abruptly but **orderly**: its agents'
    /// services and its resource profile leave the directory, so the
    /// rest of the grid observes the departure immediately. Returns the
    /// killed agents' ids.
    ///
    /// # Errors
    ///
    /// [`PlatformError::NoSuchContainer`] if absent.
    fn kill_container(&mut self, name: &str) -> Result<Vec<AgentId>, PlatformError>;

    /// Removes a container **silently**: the process vanishes but the
    /// directory keeps its stale profile and service entries, exactly as
    /// a real crash would leave them. Only heartbeat-staleness detection
    /// (the recovery layer) notices. Returns the crashed agents' ids.
    ///
    /// # Errors
    ///
    /// [`PlatformError::NoSuchContainer`] if absent.
    fn crash_container_silent(&mut self, name: &str) -> Result<Vec<AgentId>, PlatformError>;

    /// Injects (or clears) a transport fault affecting message routing
    /// from now on; drops are silent (no dead letters), as on a lossy
    /// network.
    fn set_transport_fault(&mut self, fault: TransportFault);

    /// Switches the requeue-once dead-letter policy: an undeliverable
    /// message is narrowed to its failed receiver and retried once on
    /// the next clock advance before dead-lettering for real. Off by
    /// default on both runtimes.
    fn set_dead_letter_requeue(&mut self, enabled: bool);

    /// Attaches a telemetry sink: counters, conversation traces and
    /// per-container resource profiles record into it from then on. On
    /// the threaded runtime this must happen before execution starts.
    ///
    /// # Panics
    ///
    /// Panics ([`ThreadedRuntime`]) if the threads are already running.
    fn set_telemetry(&mut self, telemetry: TelemetryHandle);

    /// The attached telemetry sink, if any.
    fn telemetry(&self) -> Option<TelemetryHandle>;

    /// Enables bounded per-container mailboxes with the given overflow
    /// policy (see [`MailboxConfig`]). The capacity is a per-container
    /// delivery budget per clock window, which makes shed/deferred
    /// totals comparable across the deterministic and threaded runtimes.
    /// Off by default (today's unbounded behaviour). On the threaded
    /// runtime this must happen before execution starts.
    ///
    /// # Panics
    ///
    /// Panics ([`ThreadedRuntime`]) if the threads are already running.
    fn set_overload(&mut self, config: MailboxConfig, pressure: Option<Arc<PressureSignal>>);

    /// Overload counters (shed per class, deferrals, peak backlog);
    /// `None` unless [`set_overload`](Runtime::set_overload) was called.
    fn overload_stats(&self) -> Option<OverloadStats>;

    /// Declares a container's agents independent of the shared
    /// directory/store cluster, so a runtime with a parallel tick phase
    /// (the [`pool`](crate::pool) runtime) may execute it on a worker
    /// thread. Purely a hint: runtimes without such a phase ignore it,
    /// and it is safe to call before the container exists.
    fn hint_parallel(&mut self, container: &str) {
        let _ = container;
    }

    /// Declares a container part of a named **parallel group**: the
    /// group's containers depend on each other (a federated shard's
    /// root, classifier and analyzers share load/liveness state through
    /// the directory) but on nothing outside the group, so a runtime
    /// with a parallel tick phase may execute the whole group — ticked
    /// internally in container-name order — on one worker thread,
    /// concurrently with other groups and with
    /// [`hint_parallel`](Runtime::hint_parallel)ed containers. Purely a
    /// hint: runtimes without such a phase ignore it, and it is safe to
    /// call before the container exists.
    fn hint_parallel_group(&mut self, group: &str, container: &str) {
        let _ = (group, container);
    }

    /// Applies one command against the network layer (composable fault
    /// windows, per-link faults, partitions, reliability — see
    /// [`net`](crate::net)). Default: ignored, for runtimes without a
    /// network layer.
    fn net_command(&mut self, command: NetCommand) {
        let _ = command;
    }

    /// Counters of the network adversary/reliability layer; `None`
    /// while untouched (or unsupported by the runtime).
    fn net_stats(&self) -> Option<NetStats> {
        None
    }
}

impl Runtime for Platform {
    fn create(name: &str) -> Self {
        Platform::new(name)
    }

    fn add_container(&mut self, name: &str) {
        Platform::add_container(self, name);
    }

    fn spawn_agent(
        &mut self,
        container: &str,
        local_name: &str,
        agent: impl Agent + 'static,
    ) -> Result<AgentId, PlatformError> {
        self.spawn(container, local_name, agent)
    }

    fn with_df<T>(&mut self, f: impl FnOnce(&mut DirectoryFacilitator) -> T) -> T {
        f(self.df_mut())
    }

    fn post(&mut self, message: impl Into<SharedMessage>) {
        Platform::post(self, message);
    }

    fn run_until_idle(&mut self, now_ms: u64) -> usize {
        Platform::run_until_idle(self, now_ms)
    }

    fn delivered_count(&self) -> u64 {
        Platform::delivered_count(self)
    }

    fn dead_letter_count(&self) -> usize {
        self.dead_letters().len()
    }

    fn container_count(&self) -> usize {
        self.container_names().count()
    }

    fn kill_container(&mut self, name: &str) -> Result<Vec<AgentId>, PlatformError> {
        Platform::kill_container(self, name)
    }

    fn crash_container_silent(&mut self, name: &str) -> Result<Vec<AgentId>, PlatformError> {
        Platform::crash_container_silent(self, name)
    }

    fn set_transport_fault(&mut self, fault: TransportFault) {
        Platform::set_fault(self, fault);
    }

    fn set_dead_letter_requeue(&mut self, enabled: bool) {
        Platform::set_dead_letter_requeue(self, enabled);
    }

    fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        Platform::set_telemetry(self, telemetry);
    }

    fn telemetry(&self) -> Option<TelemetryHandle> {
        Platform::telemetry(self)
    }

    fn set_overload(&mut self, config: MailboxConfig, pressure: Option<Arc<PressureSignal>>) {
        Platform::set_overload(self, config, pressure);
    }

    fn overload_stats(&self) -> Option<OverloadStats> {
        Platform::overload_stats(self)
    }

    fn net_command(&mut self, command: NetCommand) {
        Platform::net_command(self, command);
    }

    fn net_stats(&self) -> Option<NetStats> {
        Platform::net_stats(self)
    }
}

// One short-lived value per runtime; the Building payload's size is
// irrelevant next to boxing every state transition.
#[allow(clippy::large_enum_variant)]
enum ThreadedState {
    /// Containers and agents are still being registered.
    Building(ThreadedPlatform),
    /// Threads are running.
    Running(RunningPlatform),
    /// Transient marker while ownership moves from building to running;
    /// observable only if `start` panicked.
    Poisoned,
}

/// [`Runtime`] adapter over the threaded platform.
///
/// Wraps the build-then-start lifecycle of [`ThreadedPlatform`] /
/// [`RunningPlatform`] behind the uniform [`Runtime`] surface: threads
/// start lazily on the first [`post`](Runtime::post) or
/// [`run_until_idle`](Runtime::run_until_idle), so all wiring
/// (containers, spawns, directory registration) happens before
/// execution, exactly like on the deterministic [`Platform`].
///
/// Structural changes ([`add_container`](Runtime::add_container),
/// [`spawn_agent`](Runtime::spawn_agent),
/// [`kill_container`](Runtime::kill_container),
/// [`crash_container_silent`](Runtime::crash_container_silent)) work in
/// both phases: before the start they edit the wiring, after it they
/// take effect live — threads start and stop while the platform runs.
pub struct ThreadedRuntime {
    state: ThreadedState,
}

impl std::fmt::Debug for ThreadedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match &self.state {
            ThreadedState::Building(_) => "building",
            ThreadedState::Running(_) => "running",
            ThreadedState::Poisoned => "poisoned",
        };
        f.debug_struct("ThreadedRuntime")
            .field("phase", &phase)
            .finish()
    }
}

impl ThreadedRuntime {
    /// Creates a runtime in the building phase.
    pub fn new(name: impl Into<String>) -> Self {
        ThreadedRuntime {
            state: ThreadedState::Building(ThreadedPlatform::new(name)),
        }
    }

    /// Starts the threads if still building, and returns the running
    /// handle.
    fn running(&mut self) -> &mut RunningPlatform {
        if let ThreadedState::Building(_) = self.state {
            let state = std::mem::replace(&mut self.state, ThreadedState::Poisoned);
            let ThreadedState::Building(platform) = state else {
                unreachable!("checked above");
            };
            self.state = ThreadedState::Running(platform.start());
        }
        match &mut self.state {
            ThreadedState::Running(handle) => handle,
            _ => panic!("threaded runtime poisoned by an earlier start failure"),
        }
    }

    /// Stops all threads and returns the run statistics; `None` if the
    /// runtime never started executing.
    pub fn shutdown(self) -> Option<RunStats> {
        match self.state {
            ThreadedState::Running(handle) => Some(handle.shutdown()),
            _ => None,
        }
    }
}

impl Runtime for ThreadedRuntime {
    fn create(name: &str) -> Self {
        ThreadedRuntime::new(name)
    }

    fn add_container(&mut self, name: &str) {
        match &mut self.state {
            ThreadedState::Building(platform) => {
                platform.add_container(name);
            }
            ThreadedState::Running(handle) => handle.add_container(name),
            ThreadedState::Poisoned => {
                panic!("threaded runtime poisoned by an earlier start failure")
            }
        }
    }

    fn spawn_agent(
        &mut self,
        container: &str,
        local_name: &str,
        agent: impl Agent + 'static,
    ) -> Result<AgentId, PlatformError> {
        match &mut self.state {
            ThreadedState::Building(platform) => platform.spawn(container, local_name, agent),
            ThreadedState::Running(handle) => handle.spawn(container, local_name, agent),
            ThreadedState::Poisoned => {
                panic!("threaded runtime poisoned by an earlier start failure")
            }
        }
    }

    fn with_df<T>(&mut self, f: impl FnOnce(&mut DirectoryFacilitator) -> T) -> T {
        match &mut self.state {
            ThreadedState::Building(platform) => f(platform.df_mut()),
            ThreadedState::Running(handle) => handle.with_df(f),
            ThreadedState::Poisoned => {
                panic!("threaded runtime poisoned by an earlier start failure")
            }
        }
    }

    fn post(&mut self, message: impl Into<SharedMessage>) {
        self.running().post(message);
    }

    fn run_until_idle(&mut self, now_ms: u64) -> usize {
        let handle = self.running();
        handle.advance_clock(now_ms);
        // Tick rounds replace the deterministic stepper's implicit
        // "every step ticks": keep ticking until a whole round moves no
        // messages, so multi-hop exchanges triggered by a tick (poll →
        // classify → analyze → alert) complete within this call.
        let mut rounds = 0;
        loop {
            rounds += 1;
            let before = handle.delivered();
            handle.broadcast_tick();
            handle.wait_idle();
            if handle.delivered() == before || rounds >= 100 {
                return rounds;
            }
        }
    }

    fn delivered_count(&self) -> u64 {
        match &self.state {
            ThreadedState::Running(handle) => handle.delivered(),
            _ => 0,
        }
    }

    fn dead_letter_count(&self) -> usize {
        match &self.state {
            ThreadedState::Running(handle) => handle.dead_letter_count(),
            _ => 0,
        }
    }

    fn container_count(&self) -> usize {
        match &self.state {
            ThreadedState::Building(platform) => platform.container_count(),
            ThreadedState::Running(handle) => handle.container_count(),
            ThreadedState::Poisoned => 0,
        }
    }

    fn kill_container(&mut self, name: &str) -> Result<Vec<AgentId>, PlatformError> {
        match &mut self.state {
            ThreadedState::Building(platform) => platform.remove_container(name, true),
            ThreadedState::Running(handle) => handle.kill_container(name, true),
            ThreadedState::Poisoned => {
                panic!("threaded runtime poisoned by an earlier start failure")
            }
        }
    }

    fn crash_container_silent(&mut self, name: &str) -> Result<Vec<AgentId>, PlatformError> {
        match &mut self.state {
            ThreadedState::Building(platform) => platform.remove_container(name, false),
            ThreadedState::Running(handle) => handle.kill_container(name, false),
            ThreadedState::Poisoned => {
                panic!("threaded runtime poisoned by an earlier start failure")
            }
        }
    }

    fn set_transport_fault(&mut self, fault: TransportFault) {
        match &mut self.state {
            ThreadedState::Building(platform) => platform.set_transport_fault(fault),
            ThreadedState::Running(handle) => handle.set_transport_fault(fault),
            ThreadedState::Poisoned => {
                panic!("threaded runtime poisoned by an earlier start failure")
            }
        }
    }

    fn set_dead_letter_requeue(&mut self, enabled: bool) {
        match &mut self.state {
            ThreadedState::Building(platform) => platform.set_dead_letter_requeue(enabled),
            ThreadedState::Running(handle) => handle.set_dead_letter_requeue(enabled),
            ThreadedState::Poisoned => {
                panic!("threaded runtime poisoned by an earlier start failure")
            }
        }
    }

    fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        match &mut self.state {
            ThreadedState::Building(platform) => platform.set_telemetry(telemetry),
            _ => panic!("attach telemetry before the threaded runtime starts"),
        }
    }

    fn telemetry(&self) -> Option<TelemetryHandle> {
        match &self.state {
            ThreadedState::Building(platform) => platform.telemetry(),
            ThreadedState::Running(handle) => handle.telemetry(),
            ThreadedState::Poisoned => None,
        }
    }

    fn set_overload(&mut self, config: MailboxConfig, pressure: Option<Arc<PressureSignal>>) {
        match &mut self.state {
            ThreadedState::Building(platform) => platform.set_overload(config, pressure),
            _ => panic!("attach overload protection before the threaded runtime starts"),
        }
    }

    fn overload_stats(&self) -> Option<OverloadStats> {
        match &self.state {
            ThreadedState::Running(handle) => handle.overload_stats(),
            _ => None,
        }
    }

    fn net_command(&mut self, command: NetCommand) {
        match &mut self.state {
            ThreadedState::Building(platform) => platform.net_command(command),
            ThreadedState::Running(handle) => handle.net_command(command),
            ThreadedState::Poisoned => {
                panic!("threaded runtime poisoned by an earlier start failure")
            }
        }
    }

    fn net_stats(&self) -> Option<NetStats> {
        match &self.state {
            ThreadedState::Building(platform) => platform.net_stats(),
            ThreadedState::Running(handle) => handle.net_stats(),
            ThreadedState::Poisoned => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AgentCtx;
    use agentgrid_acl::{AclMessage, Performative, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Counter {
        hits: Arc<AtomicUsize>,
    }

    impl Agent for Counter {
        fn on_message(&mut self, _msg: &AclMessage, _ctx: &mut AgentCtx<'_>) {
            self.hits.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn ping(to: AgentId) -> AclMessage {
        AclMessage::builder(Performative::Request)
            .sender(AgentId::new("driver"))
            .receiver(to)
            .content(Value::symbol("ping"))
            .build()
            .unwrap()
    }

    /// The same generic scenario body, run against both runtimes.
    fn scenario<R: Runtime>(hits: &Arc<AtomicUsize>) -> R {
        let mut rt = R::create("x");
        rt.add_container("c1");
        rt.spawn_agent(
            "c1",
            "counter",
            Counter {
                hits: Arc::clone(hits),
            },
        )
        .unwrap();
        rt.with_df(|df| {
            df.register_service(AgentId::with_platform("counter", "x"), "count", ["n"])
        });
        rt.post(ping(AgentId::with_platform("counter", "x")));
        rt.run_until_idle(0);
        rt
    }

    #[test]
    fn one_scenario_runs_on_both_runtimes() {
        let hits = Arc::new(AtomicUsize::new(0));
        let deterministic: Platform = scenario(&hits);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(Runtime::delivered_count(&deterministic), 1);

        let threaded: ThreadedRuntime = scenario(&hits);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(threaded.delivered_count(), 1);
        let stats = threaded.shutdown().expect("started");
        assert_eq!(stats.delivered, 1);
        assert!(stats.dead_letters.is_empty());
    }

    #[test]
    fn threaded_runtime_supports_structural_changes_after_start() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut rt = ThreadedRuntime::new("x");
        rt.add_container("c1");
        rt.post(ping(AgentId::new("ghost@x"))); // starts the threads
        Runtime::run_until_idle(&mut rt, 0);
        assert_eq!(rt.dead_letter_count(), 1);

        // Spawn into the running container, then kill it live.
        let late = rt
            .spawn_agent(
                "c1",
                "late",
                Counter {
                    hits: Arc::clone(&hits),
                },
            )
            .expect("late spawn works on the running threaded runtime");
        rt.post(ping(late.clone()));
        Runtime::run_until_idle(&mut rt, 1);
        assert_eq!(hits.load(Ordering::SeqCst), 1);

        let killed = rt.kill_container("c1").expect("live kill");
        assert_eq!(killed, vec![late.clone()]);
        assert_eq!(rt.container_count(), 0);
        rt.post(ping(late));
        Runtime::run_until_idle(&mut rt, 2);
        assert_eq!(hits.load(Ordering::SeqCst), 1, "no delivery after kill");
        assert_eq!(rt.dead_letter_count(), 2);
    }

    #[test]
    fn silent_crash_keeps_directory_entries_on_both_runtimes() {
        fn scenario<R: Runtime>() -> (usize, usize) {
            let mut rt = R::create("x");
            rt.add_container("c1");
            let id = rt
                .spawn_agent(
                    "c1",
                    "victim",
                    Counter {
                        hits: Arc::new(AtomicUsize::new(0)),
                    },
                )
                .unwrap();
            rt.with_df(|df| {
                df.register_service(id.clone(), "analysis", ["c1"]);
                df.register_container(crate::ResourceProfile::new("c1", 1.0, 1.0, 64, ["cpu"]));
            });
            rt.run_until_idle(0);
            rt.crash_container_silent("c1").unwrap();
            let stale = rt.with_df(|df| (df.service_count(), df.container_profiles().count()));
            (stale.0, stale.1)
        }
        assert_eq!(scenario::<Platform>(), (1, 1), "crash leaves stale entries");
        assert_eq!(scenario::<ThreadedRuntime>(), (1, 1));
    }

    #[test]
    fn shutdown_before_start_is_none() {
        let rt = ThreadedRuntime::new("x");
        assert!(rt.shutdown().is_none());
    }
}
