use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use agentgrid_acl::{AgentId, SharedMessage};
use agentgrid_telemetry::TelemetryHandle;

use crate::agent::{Agent, AgentState};
use crate::container::{AgentSlot, Container, DfRef};
use crate::delivery::{batch_legs, group_into_batches, ContainerBatch};
use crate::net::{NetAdversary, NetCommand, NetStats};
use crate::overload::{MailboxConfig, MailboxTracker, OverloadStats, PressureSignal};
use crate::DirectoryFacilitator;

/// Errors raised by [`Platform`] management operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlatformError {
    /// The named container does not exist.
    NoSuchContainer(String),
    /// The agent does not exist (or is dead).
    NoSuchAgent(AgentId),
    /// An agent with that name already exists.
    DuplicateAgent(AgentId),
    /// A container with that name already exists.
    DuplicateContainer(String),
    /// The operation is not supported by this runtime.
    Unsupported(&'static str),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NoSuchContainer(name) => write!(f, "no container `{name}`"),
            PlatformError::NoSuchAgent(id) => write!(f, "no agent `{id}`"),
            PlatformError::DuplicateAgent(id) => write!(f, "agent `{id}` already exists"),
            PlatformError::DuplicateContainer(name) => {
                write!(f, "container `{name}` already exists")
            }
            PlatformError::Unsupported(what) => {
                write!(f, "operation not supported by this runtime: {what}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// Transport fault injection, for resilience tests.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportFault {
    /// Deliver everything (default).
    None,
    /// Silently drop messages addressed to this agent.
    DropTo(AgentId),
    /// Silently drop messages sent by this agent.
    DropFrom(AgentId),
}

/// A composable set of active [`TransportFault`]s.
///
/// The single-fault API used to be replace-semantics: one `SetFault`
/// clobbered whatever window was open, and one `ClearFault` healed
/// everything. The set makes concurrent fault windows compose:
/// **union semantics** (a leg is dropped if *any* active fault matches
/// it), scoped removal (closing one window leaves the others open), and
/// [`TransportFault::None`] is the identity (inserting it does
/// nothing). Duplicated inserts collapse, so a window opened twice
/// closes with one removal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSet {
    active: Vec<TransportFault>,
}

impl FaultSet {
    /// The set holding exactly `fault` (empty for
    /// [`TransportFault::None`]) — the bridge from the legacy
    /// replace-semantics API.
    pub fn just(fault: TransportFault) -> Self {
        let mut set = FaultSet::default();
        set.insert(fault);
        set
    }

    /// Adds a fault to the set. `None` and duplicates are no-ops.
    pub fn insert(&mut self, fault: TransportFault) {
        if matches!(fault, TransportFault::None) || self.active.contains(&fault) {
            return;
        }
        self.active.push(fault);
    }

    /// Removes exactly this fault; other active faults stay in force.
    pub fn remove(&mut self, fault: &TransportFault) {
        self.active.retain(|f| f != fault);
    }

    /// Heals everything.
    pub fn clear(&mut self) {
        self.active.clear();
    }

    /// Whether no fault is active.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Whether any active fault drops messages sent by `sender`.
    pub fn drops_from(&self, sender: &AgentId) -> bool {
        self.active
            .iter()
            .any(|f| matches!(f, TransportFault::DropFrom(from) if from == sender))
    }

    /// Whether any active fault drops legs addressed to `receiver`.
    pub fn drops_to(&self, receiver: &AgentId) -> bool {
        self.active
            .iter()
            .any(|f| matches!(f, TransportFault::DropTo(to) if to == receiver))
    }
}

/// The agent platform: containers, message transport, AMS and DF.
///
/// Stepping model: [`step`](Platform::step) routes all messages queued in
/// the previous step into mailboxes, then lets every active agent consume
/// its mailbox and take a tick, collecting newly sent messages for the
/// next step. Everything iterates in name order → fully deterministic.
///
/// See the [crate-level example](crate) for an end-to-end exchange.
#[derive(Debug)]
pub struct Platform {
    name: String,
    pub(crate) containers: BTreeMap<String, Container>,
    pub(crate) df: DirectoryFacilitator,
    pub(crate) in_flight: Vec<SharedMessage>,
    dead_letters: Vec<SharedMessage>,
    faults: FaultSet,
    /// The seeded network adversary + reliability layer; `None` (the
    /// default) routes exactly as before.
    net: Option<NetAdversary>,
    pub(crate) now_ms: u64,
    delivered: u64,
    pub(crate) telemetry: Option<TelemetryHandle>,
    /// When set, an undeliverable message is requeued once (narrowed to
    /// the failed receiver) for the next clock advance instead of
    /// dead-lettering immediately. Default off: exact dead-letter
    /// accounting is part of the deterministic baseline.
    requeue_dead_letters: bool,
    /// Narrowed copies already requeued once — a second failure of any
    /// of these dead-letters for real. Holding the [`Arc`]s keeps the
    /// pointer identity check sound. Entries drain when their retry
    /// fails (each retry copy fails at most once more), so the ledger
    /// holds only retries still in flight.
    requeue_ledger: Vec<SharedMessage>,
    /// Requeued messages waiting for the clock to advance.
    requeue_parked: Vec<SharedMessage>,
    /// Total messages ever requeued (monotone; the ledger itself drains).
    requeued_total: usize,
    /// Opt-in bounded-mailbox layer; `None` routes exactly as before.
    overload: Option<MailboxTracker>,
}

impl Platform {
    /// Creates a platform with the given name (the `@platform` suffix of
    /// agent ids).
    pub fn new(name: impl Into<String>) -> Self {
        Platform {
            name: name.into(),
            containers: BTreeMap::new(),
            df: DirectoryFacilitator::new(),
            in_flight: Vec::new(),
            dead_letters: Vec::new(),
            faults: FaultSet::default(),
            net: None,
            now_ms: 0,
            delivered: 0,
            telemetry: None,
            requeue_dead_letters: false,
            requeue_ledger: Vec::new(),
            requeue_parked: Vec::new(),
            requeued_total: 0,
            overload: None,
        }
    }

    /// Attaches a telemetry sink: metrics and conversation traces are
    /// recorded from this point on. Containers created before or after
    /// attachment are both covered.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        for (name, container) in self.containers.iter_mut() {
            container.scope = Some(telemetry.container_scope(name));
        }
        if let Some(tracker) = &mut self.overload {
            tracker.set_telemetry(TelemetryHandle::clone(&telemetry));
        }
        self.telemetry = Some(telemetry);
    }

    /// Enables bounded per-container mailboxes (see
    /// [`overload`](crate::overload)): each container accepts at most
    /// `config.capacity` deliveries per clock window, and excess traffic
    /// is deferred or shed per `config.policy`. The optional
    /// `pressure` signal is notified on every deferral/shed so upstream
    /// producers (collectors) can pace themselves.
    pub fn set_overload(&mut self, config: MailboxConfig, pressure: Option<Arc<PressureSignal>>) {
        self.overload = Some(MailboxTracker::new(
            config,
            pressure,
            self.telemetry.clone(),
        ));
    }

    /// Shed/deferral counters of the bounded-mailbox layer; `None` when
    /// overload protection is off.
    pub fn overload_stats(&self) -> Option<OverloadStats> {
        self.overload.as_ref().map(MailboxTracker::stats)
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<TelemetryHandle> {
        self.telemetry.clone()
    }

    /// The platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an empty container.
    ///
    /// # Panics
    ///
    /// Panics if the container already exists (configuration bug).
    pub fn add_container(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let mut container = Container::new();
        if let Some(telemetry) = &self.telemetry {
            container.scope = Some(telemetry.container_scope(&name));
        }
        assert!(
            self.containers.insert(name.clone(), container).is_none(),
            "container `{name}` already exists"
        );
        self
    }

    /// Removes a container abruptly ("crash"): its agents die, their
    /// directory entries are removed, and queued messages to them
    /// dead-letter. Returns the ids of the killed agents.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchContainer`] if absent.
    pub fn kill_container(&mut self, name: &str) -> Result<Vec<AgentId>, PlatformError> {
        let container = self
            .containers
            .remove(name)
            .ok_or_else(|| PlatformError::NoSuchContainer(name.to_owned()))?;
        let ids: Vec<AgentId> = container.agents.keys().cloned().collect();
        for id in &ids {
            self.df.deregister(id);
        }
        self.df.deregister_container(name);
        Ok(ids)
    }

    /// Removes a container abruptly *without* touching the directory —
    /// a **silent** crash: the dead container keeps advertising its
    /// (stale) profile and services, exactly like a host that lost power
    /// before deregistering. Liveness detection (heartbeat staleness)
    /// is what notices. Returns the ids of the killed agents.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchContainer`] if absent.
    pub fn crash_container_silent(&mut self, name: &str) -> Result<Vec<AgentId>, PlatformError> {
        let container = self
            .containers
            .remove(name)
            .ok_or_else(|| PlatformError::NoSuchContainer(name.to_owned()))?;
        Ok(container.agents.keys().cloned().collect())
    }

    /// Switches the dead-letter requeue policy: when on, the first
    /// delivery failure of a message requeues a copy narrowed to the
    /// failed receiver (retried after the next clock advance); only a
    /// second failure dead-letters. Default off.
    pub fn set_dead_letter_requeue(&mut self, enabled: bool) {
        self.requeue_dead_letters = enabled;
    }

    /// Messages requeued under the dead-letter requeue policy so far
    /// (monotone total; ledger entries drain once their retry resolves).
    pub fn requeued_count(&self) -> usize {
        self.requeued_total
    }

    /// Spawns an agent into a container under `local_name`; its full id
    /// becomes `local_name@platform`. The agent's `setup` runs
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchContainer`] or
    /// [`PlatformError::DuplicateAgent`].
    pub fn spawn(
        &mut self,
        container: &str,
        local_name: &str,
        agent: impl Agent + 'static,
    ) -> Result<AgentId, PlatformError> {
        let id = AgentId::with_platform(local_name, &self.name);
        if self.find_agent(&id).is_some() {
            return Err(PlatformError::DuplicateAgent(id));
        }
        let holder = self
            .containers
            .get_mut(container)
            .ok_or_else(|| PlatformError::NoSuchContainer(container.to_owned()))?;
        let mut slot = AgentSlot {
            agent: Box::new(agent),
            state: AgentState::Active,
            mailbox: Default::default(),
        };
        let mut outbox = Vec::new();
        {
            let mut ctx =
                crate::agent::AgentCtx::new(&id, container, self.now_ms, &mut outbox, &mut self.df);
            slot.agent.setup(&mut ctx);
        }
        if let Some(telemetry) = &self.telemetry {
            // Setup-time sends open new conversations.
            for sent in &outbox {
                if let Some(scope) = &holder.scope {
                    scope.on_sent();
                }
                telemetry.message_sent(sent, None, self.now_ms);
            }
        }
        holder.agents.insert(id.clone(), slot);
        self.in_flight.extend(outbox);
        Ok(id)
    }

    /// The container hosting an agent, if alive.
    pub fn find_agent(&self, id: &AgentId) -> Option<&str> {
        self.containers
            .iter()
            .find(|(_, c)| c.hosts(id))
            .map(|(name, _)| name.as_str())
    }

    /// Read access to a container.
    pub fn container(&self, name: &str) -> Option<&Container> {
        self.containers.get(name)
    }

    /// Container names, in order.
    pub fn container_names(&self) -> impl Iterator<Item = &str> {
        self.containers.keys().map(String::as_str)
    }

    /// Read access to the directory facilitator.
    pub fn df(&self) -> &DirectoryFacilitator {
        &self.df
    }

    /// Write access to the directory facilitator (registration from
    /// outside agent context, e.g. scenario setup).
    pub fn df_mut(&mut self) -> &mut DirectoryFacilitator {
        &mut self.df
    }

    /// Injects (or clears) a transport fault, with the legacy
    /// **replace** semantics: the new fault becomes the whole set
    /// ([`TransportFault::None`] heals everything). Composable windows
    /// go through [`net_command`](Self::net_command) with
    /// [`NetCommand::AddFault`]/[`NetCommand::RemoveFault`].
    pub fn set_fault(&mut self, fault: TransportFault) {
        self.faults = FaultSet::just(fault);
    }

    /// Applies one command against the network layer: legacy fault-set
    /// edits, per-link fault windows, partitions, the adversary seed,
    /// or the reliability policy (see [`crate::net`]).
    pub fn net_command(&mut self, command: NetCommand) {
        match command {
            NetCommand::AddFault(fault) => self.faults.insert(fault),
            NetCommand::RemoveFault(fault) => self.faults.remove(&fault),
            NetCommand::ClearFaults => self.faults.clear(),
            other => self
                .net
                .get_or_insert_with(|| NetAdversary::new(0))
                .command(other),
        }
    }

    /// Counters of the network adversary/reliability layer; `None`
    /// while no [`net_command`](Self::net_command) has touched it.
    pub fn net_stats(&self) -> Option<NetStats> {
        self.net.as_ref().map(NetAdversary::stats)
    }

    /// Messages that could not be delivered (unknown/dead receivers).
    /// A multicast with several unreachable receivers appears once per
    /// unreachable receiver, all entries sharing one allocation.
    pub fn dead_letters(&self) -> &[SharedMessage] {
        &self.dead_letters
    }

    /// Total messages delivered so far (traffic accounting).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of dead-lettered messages so far. Same introspection
    /// surface as [`RunningPlatform`](crate::RunningPlatform).
    pub fn dead_letter_count(&self) -> usize {
        self.dead_letters.len()
    }

    /// Sends a message from outside any agent (e.g. the user interface
    /// pushing feedback in). Routed on the next step. Accepts a plain
    /// [`AclMessage`](agentgrid_acl::AclMessage) or a
    /// [`SharedMessage`].
    pub fn post(&mut self, message: impl Into<SharedMessage>) {
        let message = message.into();
        if let Some(telemetry) = &self.telemetry {
            telemetry.message_sent(&message, None, self.now_ms);
        }
        self.in_flight.push(message);
    }

    /// Suspends an agent (mailbox accumulates, no scheduling).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchAgent`] if absent.
    pub fn suspend(&mut self, id: &AgentId) -> Result<(), PlatformError> {
        self.set_state(id, AgentState::Suspended)
    }

    /// Resumes a suspended agent.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchAgent`] if absent.
    pub fn resume(&mut self, id: &AgentId) -> Result<(), PlatformError> {
        self.set_state(id, AgentState::Active)
    }

    fn set_state(&mut self, id: &AgentId, state: AgentState) -> Result<(), PlatformError> {
        for container in self.containers.values_mut() {
            if let Some(slot) = container.agents.get_mut(id) {
                slot.state = state;
                return Ok(());
            }
        }
        Err(PlatformError::NoSuchAgent(id.clone()))
    }

    /// Kills an agent: removed from its container and the directory.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchAgent`] if absent.
    pub fn kill(&mut self, id: &AgentId) -> Result<(), PlatformError> {
        for container in self.containers.values_mut() {
            if container.agents.remove(id).is_some() {
                self.df.deregister(id);
                return Ok(());
            }
        }
        Err(PlatformError::NoSuchAgent(id.clone()))
    }

    /// **Mobility**: moves a live agent — with its state and pending
    /// mailbox — to another container (the paper's migration of analysis
    /// activities). `setup` is *not* re-run.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoSuchAgent`] or
    /// [`PlatformError::NoSuchContainer`].
    pub fn migrate(&mut self, id: &AgentId, to_container: &str) -> Result<(), PlatformError> {
        if !self.containers.contains_key(to_container) {
            return Err(PlatformError::NoSuchContainer(to_container.to_owned()));
        }
        let slot = self
            .containers
            .values_mut()
            .find_map(|c| c.agents.remove(id))
            .ok_or_else(|| PlatformError::NoSuchAgent(id.clone()))?;
        self.containers
            .get_mut(to_container)
            .expect("checked above")
            .agents
            .insert(id.clone(), slot);
        Ok(())
    }

    /// The routing half of a step: retry parked requeues on a clock
    /// advance, drain overload deferrals due this window, then drain the
    /// queue into per-container batches and flush them
    /// ([`route_batch`](Self::route_batch)). Shared between
    /// [`step`](Platform::step) and runtimes that replace only the tick
    /// phase (the pool runtime). Returns the number of messages routed.
    pub(crate) fn pre_tick(&mut self, now_ms: u64) -> usize {
        let advanced = now_ms > self.now_ms;
        if advanced && !self.requeue_parked.is_empty() {
            // The outage may have healed since the failure: retry parked
            // messages on the first step of the new timestamp.
            let parked = std::mem::take(&mut self.requeue_parked);
            self.in_flight.extend(parked);
        }
        self.now_ms = now_ms;
        // One telemetry handle for the whole step — not re-cloned per
        // drained leg, routed message or ticked container.
        let telemetry = self.telemetry.clone();
        if advanced {
            if let Some(tracker) = &mut self.overload {
                // New clock window: budgets reset, deferred legs drain.
                let due = tracker.begin_window();
                for (message, receiver) in due {
                    self.deliver_leg(&message, &receiver, telemetry.as_deref());
                }
            }
            // Delayed and retransmitted legs due by now re-enter,
            // re-resolving receivers like overload deferrals do.
            let due = match &mut self.net {
                Some(net) => {
                    let containers = &self.containers;
                    net.due(
                        now_ms,
                        |agent| resolve_in(containers, agent),
                        telemetry.as_deref(),
                    )
                }
                None => Vec::new(),
            };
            for (message, receiver) in due {
                self.deliver_leg(&message, &receiver, telemetry.as_deref());
            }
        }
        let to_route = std::mem::take(&mut self.in_flight);
        let routed = to_route.len();
        self.route_batch(&to_route, telemetry.as_deref());
        routed
    }

    /// Runs one step at simulated time `now_ms`: route queued messages,
    /// then let every active agent consume its mailbox and tick. Returns
    /// the number of messages routed this step.
    pub fn step(&mut self, now_ms: u64) -> usize {
        let routed = self.pre_tick(now_ms);
        let telemetry = self.telemetry.clone();
        let mut outbox = Vec::new();
        {
            let mut df = DfRef::Direct(&mut self.df);
            for (name, container) in self.containers.iter_mut() {
                container.tick_agents(name, now_ms, &mut outbox, &mut df, telemetry.as_deref());
            }
        }
        self.in_flight.extend(outbox);
        routed
    }

    /// Steps repeatedly at the same timestamp until no messages are in
    /// flight (a quiescent exchange). Returns the number of steps taken.
    /// Stops after 10 000 steps as a runaway safety net.
    pub fn run_until_idle(&mut self, now_ms: u64) -> usize {
        let mut steps = 0;
        loop {
            steps += 1;
            self.step(now_ms);
            if self.in_flight.is_empty() || steps >= 10_000 {
                return steps;
            }
        }
    }

    /// Batch-first routing: the drained queue is grouped into
    /// per-container batches (transport faults and receiver resolution
    /// applied once, up front), unresolved legs fail in posted order,
    /// then each container batch goes through overload admission **once**
    /// and flushes into mailboxes in container-name order. Fan-out stays
    /// N `Arc::clone`s of one shared allocation.
    fn route_batch(
        &mut self,
        batch: &[SharedMessage],
        telemetry: Option<&agentgrid_telemetry::Telemetry>,
    ) {
        let mut failed: Vec<(SharedMessage, AgentId)> = Vec::new();
        let mut batches = {
            let containers = &self.containers;
            group_into_batches(
                batch,
                &self.faults,
                |receiver| resolve_in(containers, receiver),
                |message, receiver| failed.push((SharedMessage::clone(message), receiver.clone())),
            )
        };
        for (message, receiver) in &failed {
            self.fail_leg(message, receiver, telemetry);
        }
        let now_ms = self.now_ms;
        if let Some(net) = &mut self.net {
            // The adversary sits between routing and admission: legs it
            // drops/delays/parks never reach the overload layer.
            let containers = &self.containers;
            let mut survived: BTreeMap<String, ContainerBatch> = BTreeMap::new();
            for (container, legs) in batches {
                let legs = net.process_batch(
                    &container,
                    legs,
                    |agent| resolve_in(containers, agent),
                    now_ms,
                    telemetry,
                );
                if !legs.is_empty() {
                    survived.insert(container, legs);
                }
            }
            batches = survived;
        }
        for (container, legs) in batches {
            let legs = match &mut self.overload {
                Some(tracker) => tracker.admit_batch(&container, legs, now_ms),
                None => legs,
            };
            self.flush_batch(&container, &legs, telemetry);
        }
    }

    /// Delivers one admitted container batch into its mailboxes and
    /// records the batch size.
    fn flush_batch(
        &mut self,
        container: &str,
        legs: &ContainerBatch,
        telemetry: Option<&agentgrid_telemetry::Telemetry>,
    ) {
        if let Some(t) = telemetry {
            t.batch_flushed(batch_legs(legs));
        }
        for (message, receivers) in legs {
            for receiver in receivers {
                self.deliver_to(container, message, receiver, telemetry);
            }
        }
    }

    /// The container currently hosting a live (non-dead) `receiver`.
    fn resolve(&self, receiver: &AgentId) -> Option<String> {
        resolve_in(&self.containers, receiver)
    }

    /// Delivers one admitted leg, re-resolving the container first (it
    /// may have died while the leg sat in the overload waiting queue).
    fn deliver_leg(
        &mut self,
        message: &SharedMessage,
        receiver: &AgentId,
        telemetry: Option<&agentgrid_telemetry::Telemetry>,
    ) {
        match self.resolve(receiver) {
            Some(container) => self.deliver_to(&container, message, receiver, telemetry),
            None => self.fail_leg(message, receiver, telemetry),
        }
    }

    fn deliver_to(
        &mut self,
        container: &str,
        message: &SharedMessage,
        receiver: &AgentId,
        telemetry: Option<&agentgrid_telemetry::Telemetry>,
    ) {
        let present = self
            .containers
            .get(container)
            .is_some_and(|c| c.agents.contains_key(receiver));
        if !present {
            return self.fail_leg(message, receiver, telemetry);
        }
        let holder = self.containers.get_mut(container).expect("checked above");
        let slot = holder.agents.get_mut(receiver).expect("checked above");
        slot.mailbox.push_back(SharedMessage::clone(message));
        self.delivered += 1;
        if let (Some(t), Some(scope)) = (telemetry, &holder.scope) {
            t.message_delivered(message, receiver, scope, self.now_ms);
        }
    }

    /// One undeliverable (message, receiver) leg: requeue once if the
    /// policy is on, otherwise dead-letter.
    fn fail_leg(
        &mut self,
        message: &SharedMessage,
        receiver: &AgentId,
        telemetry: Option<&agentgrid_telemetry::Telemetry>,
    ) {
        if self.requeue_dead_letters {
            match self
                .requeue_ledger
                .iter()
                .position(|m| SharedMessage::ptr_eq(m, message))
            {
                None => {
                    // First failure: requeue once, narrowed to the
                    // failed receiver so receivers the multicast
                    // already reached are not delivered twice.
                    let retry = message.narrowed(receiver.clone()).into_shared();
                    self.requeue_ledger.push(SharedMessage::clone(&retry));
                    self.requeue_parked.push(retry);
                    self.requeued_total += 1;
                    return;
                }
                Some(at) => {
                    // Second failure of a requeued copy: drain the
                    // ledger entry (this allocation is never re-sent)
                    // and dead-letter for real.
                    self.requeue_ledger.swap_remove(at);
                }
            }
        }
        if let Some(t) = telemetry {
            t.message_dead_lettered(message, receiver, self.now_ms);
        }
        self.dead_letters.push(SharedMessage::clone(message));
    }
}

/// The container currently hosting a live (non-dead) `receiver`. A free
/// function so batch grouping can resolve against a field borrow while
/// the failure path mutates other platform state.
pub(crate) fn resolve_in(
    containers: &BTreeMap<String, Container>,
    receiver: &AgentId,
) -> Option<String> {
    containers
        .iter()
        .find(|(_, c)| {
            c.agents
                .get(receiver)
                .is_some_and(|slot| slot.state != AgentState::Dead)
        })
        .map(|(name, _)| name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AgentCtx;
    use agentgrid_acl::{AclMessage, Performative, Value};

    /// Counts messages; replies to `ping` with `pong`.
    struct Ponger {
        received: u64,
    }

    impl Agent for Ponger {
        fn on_message(&mut self, message: &AclMessage, ctx: &mut AgentCtx<'_>) {
            self.received += 1;
            if message.content() == &Value::symbol("ping") {
                ctx.send(message.reply(Performative::Inform, Value::symbol("pong")));
            }
        }
    }

    /// Sends `count` pings to `target` on setup; counts pongs.
    struct Pinger {
        target: AgentId,
        count: usize,
        pongs: u64,
    }

    impl Agent for Pinger {
        fn setup(&mut self, ctx: &mut AgentCtx<'_>) {
            for _ in 0..self.count {
                let msg = AclMessage::builder(Performative::Request)
                    .sender(ctx.self_id().clone())
                    .receiver(self.target.clone())
                    .content(Value::symbol("ping"))
                    .build()
                    .unwrap();
                ctx.send(msg);
            }
        }
        fn on_message(&mut self, _message: &AclMessage, _ctx: &mut AgentCtx<'_>) {
            self.pongs += 1;
        }
    }

    fn two_agent_platform(pings: usize) -> (Platform, AgentId, AgentId) {
        let mut p = Platform::new("t");
        p.add_container("c1").add_container("c2");
        let ponger = p.spawn("c2", "ponger", Ponger { received: 0 }).unwrap();
        let pinger = p
            .spawn(
                "c1",
                "pinger",
                Pinger {
                    target: ponger.clone(),
                    count: pings,
                    pongs: 0,
                },
            )
            .unwrap();
        (p, pinger, ponger)
    }

    #[test]
    fn messages_round_trip_between_containers() {
        let (mut p, _, _) = two_agent_platform(3);
        let steps = p.run_until_idle(0);
        assert!(steps >= 2, "ping and pong need separate steps");
        // 3 pings delivered + 3 pongs delivered.
        assert_eq!(p.delivered_count(), 6);
        assert!(p.dead_letters().is_empty());
    }

    #[test]
    fn unknown_receiver_dead_letters() {
        let mut p = Platform::new("t");
        p.add_container("c1");
        let msg = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("outside"))
            .receiver(AgentId::new("ghost@t"))
            .build()
            .unwrap();
        p.post(msg);
        p.step(0);
        assert_eq!(p.dead_letters().len(), 1);
    }

    #[test]
    fn duplicate_agent_and_missing_container_error() {
        let mut p = Platform::new("t");
        p.add_container("c1");
        p.spawn("c1", "a", Ponger { received: 0 }).unwrap();
        assert!(matches!(
            p.spawn("c1", "a", Ponger { received: 0 }),
            Err(PlatformError::DuplicateAgent(_))
        ));
        assert!(matches!(
            p.spawn("nope", "b", Ponger { received: 0 }),
            Err(PlatformError::NoSuchContainer(_))
        ));
    }

    #[test]
    fn suspend_holds_mail_until_resume() {
        let (mut p, _pinger, ponger) = two_agent_platform(2);
        p.suspend(&ponger).unwrap();
        p.step(0); // pings routed into the suspended mailbox
        p.step(0);
        let c2 = p.container("c2").unwrap();
        assert_eq!(c2.pending_messages(), 2);
        p.resume(&ponger).unwrap();
        p.run_until_idle(0);
        assert_eq!(p.container("c2").unwrap().pending_messages(), 0);
    }

    #[test]
    fn kill_agent_dead_letters_future_mail() {
        let (mut p, _, ponger) = two_agent_platform(1);
        p.kill(&ponger).unwrap();
        p.run_until_idle(0);
        assert_eq!(p.dead_letters().len(), 1);
        assert!(p.find_agent(&ponger).is_none());
    }

    #[test]
    fn kill_container_reports_agents_and_cleans_df() {
        let (mut p, _, ponger) = two_agent_platform(1);
        p.df_mut()
            .register_service(ponger.clone(), "analysis", ["x"]);
        let killed = p.kill_container("c2").unwrap();
        assert_eq!(killed, vec![ponger]);
        assert_eq!(p.df().service_count(), 0);
        assert!(p.container("c2").is_none());
    }

    #[test]
    fn migration_preserves_agent_state_and_mail_flow() {
        let (mut p, pinger, ponger) = two_agent_platform(1);
        p.run_until_idle(0);
        // Move the ponger to c1 and ping again via post().
        p.migrate(&ponger, "c1").unwrap();
        assert_eq!(p.find_agent(&ponger), Some("c1"));
        let msg = AclMessage::builder(Performative::Request)
            .sender(pinger.clone())
            .receiver(ponger.clone())
            .content(Value::symbol("ping"))
            .build()
            .unwrap();
        p.post(msg);
        p.run_until_idle(1);
        // 1 ping + 1 pong before migration, 1 ping + 1 pong after.
        assert_eq!(p.delivered_count(), 4);
    }

    #[test]
    fn migrate_errors_are_reported() {
        let (mut p, _, ponger) = two_agent_platform(1);
        assert!(matches!(
            p.migrate(&ponger, "nope"),
            Err(PlatformError::NoSuchContainer(_))
        ));
        assert!(matches!(
            p.migrate(&AgentId::new("ghost@t"), "c1"),
            Err(PlatformError::NoSuchAgent(_))
        ));
    }

    #[test]
    fn drop_to_fault_suppresses_delivery() {
        let (mut p, _, ponger) = two_agent_platform(2);
        p.set_fault(TransportFault::DropTo(ponger.clone()));
        p.run_until_idle(0);
        assert_eq!(p.delivered_count(), 0);
        assert!(
            p.dead_letters().is_empty(),
            "drops are silent, not dead-lettered"
        );
        p.set_fault(TransportFault::None);
    }

    #[test]
    fn drop_from_fault_suppresses_sender() {
        let (mut p, pinger, _) = two_agent_platform(2);
        p.set_fault(TransportFault::DropFrom(pinger.clone()));
        p.run_until_idle(0);
        assert_eq!(p.delivered_count(), 0);
    }

    #[test]
    fn spawn_runs_setup_immediately() {
        let mut p = Platform::new("t");
        p.add_container("c1");
        // A pinger's setup queues messages even before any step.
        p.spawn(
            "c1",
            "pinger",
            Pinger {
                target: AgentId::new("nobody@t"),
                count: 2,
                pongs: 0,
            },
        )
        .unwrap();
        p.step(0);
        assert_eq!(p.dead_letters().len(), 2);
    }

    #[test]
    fn fan_out_shares_one_allocation() {
        let mut p = Platform::new("t");
        p.add_container("c");
        let msg = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("outside"))
            .receiver(AgentId::new("ghost1@t"))
            .receiver(AgentId::new("ghost2@t"))
            .build()
            .unwrap();
        p.post(msg);
        p.step(0);
        // Both dead-letter entries point at the same allocation: routing
        // multicasts by bumping the refcount, not by deep-cloning.
        let letters = p.dead_letters();
        assert_eq!(letters.len(), 2);
        assert!(std::sync::Arc::ptr_eq(&letters[0], &letters[1]));
    }

    #[test]
    fn multicast_reaches_every_receiver() {
        let mut p = Platform::new("t");
        p.add_container("c");
        p.spawn("c", "a", Ponger { received: 0 }).unwrap();
        p.spawn("c", "b", Ponger { received: 0 }).unwrap();
        let msg = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("outside"))
            .receiver(AgentId::new("a@t"))
            .receiver(AgentId::new("b@t"))
            .build()
            .unwrap();
        p.post(msg);
        p.step(0);
        assert_eq!(p.delivered_count(), 2);
    }
}
