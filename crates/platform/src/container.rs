use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use agentgrid_acl::{AgentId, SharedMessage};
use agentgrid_telemetry::{ContainerScope, Telemetry};
use parking_lot::Mutex;

use crate::agent::{Agent, AgentState};
use crate::DirectoryFacilitator;

/// Directory access handed to [`Container::tick_agents`]: either the
/// stepper's exclusive borrow, or a shared lock that each callback takes
/// lazily (see [`crate::AgentCtx::new_shared`]).
pub(crate) enum DfRef<'a> {
    Direct(&'a mut DirectoryFacilitator),
    Shared(&'a Mutex<DirectoryFacilitator>),
}

impl DfRef<'_> {
    /// Builds an [`crate::AgentCtx`] for one callback over this access.
    fn ctx<'b>(
        &'b mut self,
        id: &'b AgentId,
        container: &'b str,
        now_ms: u64,
        outbox: &'b mut Vec<SharedMessage>,
    ) -> crate::agent::AgentCtx<'b> {
        match self {
            DfRef::Direct(df) => crate::agent::AgentCtx::new(id, container, now_ms, outbox, df),
            DfRef::Shared(lock) => {
                crate::agent::AgentCtx::new_shared(id, container, now_ms, outbox, lock)
            }
        }
    }
}

pub(crate) struct AgentSlot {
    pub(crate) agent: Box<dyn Agent>,
    pub(crate) state: AgentState,
    pub(crate) mailbox: VecDeque<SharedMessage>,
}

impl std::fmt::Debug for AgentSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentSlot")
            .field("state", &self.state)
            .field("mailbox_len", &self.mailbox.len())
            .finish()
    }
}

/// A container: a named group of agents running on one (real or modelled)
/// machine — the paper's unit of grid membership.
///
/// Containers are created and driven through the
/// [`Platform`](crate::Platform); this type exposes inspection:
///
/// ```
/// use agentgrid_platform::{Agent, Platform};
///
/// struct Noop;
/// impl Agent for Noop {}
///
/// let mut platform = Platform::new("grid");
/// platform.add_container("pg-1");
/// platform.spawn("pg-1", "analyzer", Noop).unwrap();
/// let container = platform.container("pg-1").unwrap();
/// assert_eq!(container.agent_count(), 1);
/// assert!(container.hosts(&"analyzer@grid".into()));
/// ```
#[derive(Debug, Default)]
pub struct Container {
    pub(crate) agents: BTreeMap<AgentId, AgentSlot>,
    /// Telemetry handles for this container, cached so the delivery and
    /// handling paths never take the registry lock. `None` while no
    /// telemetry is attached to the platform.
    pub(crate) scope: Option<Arc<ContainerScope>>,
}

impl Container {
    pub(crate) fn new() -> Self {
        Container::default()
    }

    /// Number of agents (any state) in this container.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Whether the container hosts the agent.
    pub fn hosts(&self, id: &AgentId) -> bool {
        self.agents.contains_key(id)
    }

    /// Ids of hosted agents, in name order.
    pub fn agent_ids(&self) -> impl Iterator<Item = &AgentId> {
        self.agents.keys()
    }

    /// Messages queued but not yet delivered to this container's agents.
    pub fn pending_messages(&self) -> usize {
        self.agents.values().map(|s| s.mailbox.len()).sum()
    }

    pub(crate) fn tick_agents(
        &mut self,
        container_name: &str,
        now_ms: u64,
        outbox: &mut Vec<SharedMessage>,
        df: &mut DfRef<'_>,
        telemetry: Option<&Telemetry>,
    ) {
        let scope = self.scope.as_deref();
        for (id, slot) in self.agents.iter_mut() {
            if slot.state != AgentState::Active {
                continue;
            }
            // Deliver the mailbox first, then tick.
            while let Some(message) = slot.mailbox.pop_front() {
                let span = match (telemetry, scope) {
                    (Some(t), Some(scope)) => t.start_handle(&message, id, scope),
                    _ => None,
                };
                let started = telemetry.map(|_| std::time::Instant::now());
                let sent_from = outbox.len();
                {
                    let mut ctx = df.ctx(id, container_name, now_ms, outbox);
                    slot.agent.on_message(&message, &mut ctx);
                }
                if let (Some(t), Some(scope)) = (telemetry, scope) {
                    let busy_ns = started
                        .map(|s| s.elapsed().as_nanos() as u64)
                        .unwrap_or_default();
                    t.finish_handle(span, scope, now_ms, busy_ns);
                    // Messages produced while handling are causal
                    // children of the handled message's span.
                    for sent in &outbox[sent_from..] {
                        scope.on_sent();
                        t.message_sent(sent, span, now_ms);
                    }
                }
            }
            let sent_from = outbox.len();
            {
                let mut ctx = df.ctx(id, container_name, now_ms, outbox);
                slot.agent.on_tick(&mut ctx);
            }
            if let Some(t) = telemetry {
                // Tick-originated sends start new conversations.
                for sent in &outbox[sent_from..] {
                    if let Some(scope) = scope {
                        scope.on_sent();
                    }
                    t.message_sent(sent, None, now_ms);
                }
            }
        }
    }
}
