//! Overload protection: bounded per-container mailboxes with
//! configurable overflow policies, shared by both runtimes.
//!
//! The paper's load-balancing principles (§3.5) pick the best worker for
//! a task, but say nothing about what happens once *every* worker is
//! saturated. This module supplies the missing back-stop: each container
//! gets a per-clock-window delivery budget ([`MailboxConfig::capacity`]),
//! and traffic beyond the budget is either deferred to a later window
//! ([`OverflowPolicy::Block`] — the simulated-time equivalent of
//! backpressuring the sender) or shed ([`OverflowPolicy::ShedOldest`],
//! [`OverflowPolicy::ShedByPriority`]).
//!
//! # Why windows, not instantaneous queue depth
//!
//! Both runtimes must agree on *how many* messages are shed for the same
//! scenario, or cross-runtime comparisons become meaningless. An
//! instantaneous-depth bound cannot deliver that: on the threaded
//! runtime the observed depth depends on thread interleaving. A budget
//! per **simulated-clock window** (one distinct timestamp = one window)
//! does, because all traffic in this codebase is driven by the simulated
//! clock — the multiset of messages bound for a container within one
//! window is a property of the scenario, not of scheduling. Within a
//! window the runtimes may disagree on arrival *order* (so
//! [`ShedByPriority`](OverflowPolicy::ShedByPriority) may attribute
//! sheds to different victims), but the shed *totals* agree.
//!
//! # Message classes
//!
//! Shedding is priority-aware via the [`MessageClass`] lattice:
//! alerts/escalations > broker protocol > reports > raw collection
//! data. Alert-class messages are **never** shed: when every shedding
//! candidate is an alert, the bound is deliberately exceeded rather than
//! dropping one (see [`MessageClass::Alert`]).
//!
//! The layer is strictly opt-in: a runtime without a [`MailboxConfig`]
//! routes exactly as before, byte for byte.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use agentgrid_acl::{AgentId, SharedMessage, Value};
use agentgrid_telemetry::{Counter, EventKind, Gauge, TelemetryHandle};

/// What to do with traffic beyond a container's per-window budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OverflowPolicy {
    /// Backpressure: excess messages wait (unbounded) and are delivered
    /// in later windows as budget frees up. Nothing is lost; latency
    /// grows instead.
    Block,
    /// Keep a bounded waiting queue; once it is full, evict the oldest
    /// waiting message to admit the newest (fresh data beats stale).
    ShedOldest,
    /// Keep a bounded waiting queue; once it is full, evict the
    /// lowest-[`MessageClass`] candidate (ties: oldest first).
    /// [`MessageClass::Alert`] candidates are exempt — if every
    /// candidate is an alert the queue grows past its bound instead.
    ShedByPriority,
}

/// Priority lattice for overload decisions, derived from the ontology
/// `concept` tag of a message's content. Higher is more important.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MessageClass {
    /// Raw collection data (`collected-batch`, `observation`): cheapest
    /// to regenerate — the next poll produces a fresh batch.
    Bulk = 0,
    /// Reports and bookkeeping (resource profiles, learned rules,
    /// anything unclassified).
    Report = 1,
    /// Broker protocol traffic (`analysis-task`, `done`, `data-ready`):
    /// dropping one stalls a task until the retry/deadline machinery
    /// notices.
    Broker = 2,
    /// Alerts and escalations (`alert`), including `container-dead` and
    /// `task-retry-exhausted`: never shed.
    Alert = 3,
}

impl MessageClass {
    /// All classes, lowest priority first. Indexable by `class as usize`.
    pub const ALL: [MessageClass; 4] = [
        MessageClass::Bulk,
        MessageClass::Report,
        MessageClass::Broker,
        MessageClass::Alert,
    ];

    /// Classifies a message from the `concept` tag of its content map.
    /// Messages without a recognized concept classify as [`Report`]
    /// (middle of the lattice: never preferred over broker traffic,
    /// never outlives an alert).
    ///
    /// [`Report`]: MessageClass::Report
    pub fn of(message: &SharedMessage) -> Self {
        match message.content().get("concept").and_then(Value::as_str) {
            Some("alert") => MessageClass::Alert,
            Some("analysis-task") | Some("done") | Some("data-ready") => MessageClass::Broker,
            Some("collected-batch") | Some("observation") => MessageClass::Bulk,
            _ => MessageClass::Report,
        }
    }

    /// The metric label for `agentgrid_shed_messages_total{class=…}`.
    pub fn as_label(self) -> &'static str {
        match self {
            MessageClass::Bulk => "bulk",
            MessageClass::Report => "report",
            MessageClass::Broker => "broker",
            MessageClass::Alert => "alert",
        }
    }
}

/// Bounded-mailbox knobs: the per-container, per-clock-window delivery
/// budget and the policy applied beyond it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MailboxConfig {
    /// Deliveries admitted per container per clock window (also the
    /// waiting-queue bound under the shed policies). Clamped to ≥ 1.
    pub capacity: usize,
    /// What happens to traffic beyond the budget.
    pub policy: OverflowPolicy,
}

impl MailboxConfig {
    /// A config with the given budget and policy.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        MailboxConfig { capacity, policy }
    }
}

/// Monotone signal that downstream containers are saturated. The
/// routing layer bumps it on every deferral or shed; collectors compare
/// the count against the value they last saw to decide whether to
/// stretch their poll interval (see the grid's collector pacing).
#[derive(Debug, Default)]
pub struct PressureSignal {
    events: AtomicU64,
}

impl PressureSignal {
    /// A fresh signal with no recorded pressure.
    pub fn new() -> Self {
        PressureSignal::default()
    }

    /// Records one saturation event (deferral or shed).
    pub fn notify(&self) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    /// Total saturation events so far.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }
}

/// Counters accumulated by the bounded-mailbox layer, snapshot via
/// `Runtime::overload_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Messages shed, indexed by `MessageClass as usize`.
    pub shed_by_class: [u64; 4],
    /// Messages deferred to a later window (each counted once at the
    /// moment it entered the waiting queue).
    pub deferred: u64,
    /// Peak waiting-queue depth across all containers. Bounded by the
    /// configured capacity under the shed policies (alert exemption
    /// aside); unbounded under [`OverflowPolicy::Block`].
    pub highwater: usize,
}

impl OverloadStats {
    /// Total messages shed across all classes.
    pub fn shed_total(&self) -> u64 {
        self.shed_by_class.iter().sum()
    }

    /// Messages of `class` shed so far.
    pub fn shed(&self, class: MessageClass) -> u64 {
        self.shed_by_class[class as usize]
    }
}

/// Outcome of admitting one (message, receiver) leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Budget available: deliver now.
    Deliver,
    /// Saturated: the tracker took ownership of the leg and will return
    /// it from a later [`MailboxTracker::begin_window`].
    Deferred,
    /// Saturated and shed: the leg is gone (already counted).
    Shed,
}

/// One deferred (message, receiver) leg.
#[derive(Debug)]
struct Waiting {
    message: SharedMessage,
    receiver: AgentId,
    class: MessageClass,
}

#[derive(Debug, Default)]
struct Window {
    /// Deliveries admitted in the current clock window.
    used: usize,
    /// Legs waiting for a later window, oldest first.
    backlog: VecDeque<Waiting>,
}

/// The bookkeeping both runtimes drive: per-container window budgets,
/// the waiting queues, and the shed/deferral counters. The deterministic
/// platform owns one directly; the threaded runtime shares one behind a
/// mutex (admission already happens under its routing lock).
#[derive(Debug)]
pub(crate) struct MailboxTracker {
    config: MailboxConfig,
    windows: BTreeMap<String, Window>,
    stats: OverloadStats,
    pressure: Option<Arc<PressureSignal>>,
    telemetry: Option<TelemetryHandle>,
    shed_counters: [Option<Counter>; 4],
    highwater_gauges: BTreeMap<String, Gauge>,
}

impl MailboxTracker {
    pub(crate) fn new(
        config: MailboxConfig,
        pressure: Option<Arc<PressureSignal>>,
        telemetry: Option<TelemetryHandle>,
    ) -> Self {
        MailboxTracker {
            config,
            windows: BTreeMap::new(),
            stats: OverloadStats::default(),
            pressure,
            telemetry,
            shed_counters: [None, None, None, None],
            highwater_gauges: BTreeMap::new(),
        }
    }

    pub(crate) fn stats(&self) -> OverloadStats {
        self.stats
    }

    /// Re-points metric export after a late `set_telemetry`.
    pub(crate) fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = Some(telemetry);
        self.shed_counters = [None, None, None, None];
        self.highwater_gauges.clear();
    }

    fn capacity(&self) -> usize {
        self.config.capacity.max(1)
    }

    fn note_pressure(&self) {
        if let Some(signal) = &self.pressure {
            signal.notify();
        }
    }

    fn record_shed(&mut self, container: &str, class: MessageClass, now_ms: u64) {
        self.stats.shed_by_class[class as usize] += 1;
        if let Some(telemetry) = &self.telemetry {
            let counter = self.shed_counters[class as usize].get_or_insert_with(|| {
                telemetry.registry().counter(
                    "agentgrid_shed_messages_total",
                    &[("class", class.as_label())],
                )
            });
            counter.inc();
            telemetry.record_event(
                now_ms,
                EventKind::DeliveryShed {
                    container: container.to_owned(),
                    class: class.as_label(),
                },
            );
        }
        self.note_pressure();
    }

    fn note_highwater(&mut self, container: &str, depth: usize) {
        if depth > self.stats.highwater {
            self.stats.highwater = depth;
        }
        if let Some(telemetry) = &self.telemetry {
            let gauge = self
                .highwater_gauges
                .entry(container.to_owned())
                .or_insert_with(|| {
                    telemetry
                        .registry()
                        .gauge("agentgrid_mailbox_highwater", &[("container", container)])
                });
            if depth as i64 > gauge.get() {
                gauge.set(depth as i64);
            }
        }
    }

    fn defer(&mut self, container: &str, waiting: Waiting) {
        let window = self.windows.entry(container.to_owned()).or_default();
        window.backlog.push_back(waiting);
        let depth = window.backlog.len();
        self.stats.deferred += 1;
        self.note_highwater(container, depth);
        self.note_pressure();
    }

    /// Admits one (message, receiver) leg bound for `container` in the
    /// current window. `now_ms` stamps any shed decision for the flight
    /// recorder.
    pub(crate) fn admit(
        &mut self,
        container: &str,
        message: &SharedMessage,
        receiver: &AgentId,
        now_ms: u64,
    ) -> Admission {
        let cap = self.capacity();
        let window = self.windows.entry(container.to_owned()).or_default();
        if window.used < cap {
            window.used += 1;
            return Admission::Deliver;
        }
        let class = MessageClass::of(message);
        let waiting = Waiting {
            message: SharedMessage::clone(message),
            receiver: receiver.clone(),
            class,
        };
        match self.config.policy {
            OverflowPolicy::Block => {
                self.defer(container, waiting);
                Admission::Deferred
            }
            OverflowPolicy::ShedOldest => {
                if window.backlog.len() < cap {
                    self.defer(container, waiting);
                    return Admission::Deferred;
                }
                let victim = window
                    .backlog
                    .pop_front()
                    .expect("backlog at capacity ≥ 1 is non-empty");
                self.record_shed(container, victim.class, now_ms);
                self.defer(container, waiting);
                Admission::Deferred
            }
            OverflowPolicy::ShedByPriority => {
                if window.backlog.len() < cap {
                    self.defer(container, waiting);
                    return Admission::Deferred;
                }
                // Victim: the lowest class among the waiting queue and
                // the incoming leg; ties break towards the oldest.
                let (victim_at, victim_class) = window
                    .backlog
                    .iter()
                    .enumerate()
                    .min_by_key(|(index, w)| (w.class, *index))
                    .map(|(index, w)| (index, w.class))
                    .expect("backlog at capacity ≥ 1 is non-empty");
                if class < victim_class {
                    // The incoming leg is the least important candidate.
                    self.record_shed(container, class, now_ms);
                    return Admission::Shed;
                }
                if victim_class == MessageClass::Alert {
                    // Every candidate is an alert: exceed the bound
                    // rather than drop one.
                    self.defer(container, waiting);
                    return Admission::Deferred;
                }
                window.backlog.remove(victim_at);
                self.record_shed(container, victim_class, now_ms);
                self.defer(container, waiting);
                Admission::Deferred
            }
        }
    }

    /// Admits a whole per-container batch in one call — the admission
    /// point of the batch-first delivery contract. The class-aware
    /// shedding decision runs over the batch leg by leg, so the result
    /// is identical to calling [`admit`](Self::admit) once per leg in
    /// order (per-window budgets and the alert-shed exemption are
    /// sequential state machines and must stay runtime-independent);
    /// what changes is the locking shape: callers acquire the tracker
    /// once per batch instead of once per leg. Returns the legs to
    /// deliver now in their original order; deferred legs move into the
    /// waiting queue and shed legs are dropped (and counted).
    pub(crate) fn admit_batch(
        &mut self,
        container: &str,
        legs: Vec<(SharedMessage, Vec<AgentId>)>,
        now_ms: u64,
    ) -> Vec<(SharedMessage, Vec<AgentId>)> {
        let mut admitted = Vec::with_capacity(legs.len());
        for (message, receivers) in legs {
            let mut keep = Vec::with_capacity(receivers.len());
            for receiver in receivers {
                match self.admit(container, &message, &receiver, now_ms) {
                    Admission::Deliver => keep.push(receiver),
                    Admission::Deferred | Admission::Shed => {}
                }
            }
            if !keep.is_empty() {
                admitted.push((message, keep));
            }
        }
        admitted
    }

    /// Rolls every container into a new clock window: budgets reset and
    /// waiting legs drain (oldest first, consuming fresh budget). The
    /// caller delivers the returned legs. Iteration is in container-name
    /// order, so the drain itself is deterministic.
    pub(crate) fn begin_window(&mut self) -> Vec<(SharedMessage, AgentId)> {
        let cap = self.capacity();
        let mut due = Vec::new();
        for window in self.windows.values_mut() {
            window.used = 0;
            while window.used < cap {
                match window.backlog.pop_front() {
                    Some(waiting) => {
                        window.used += 1;
                        due.push((waiting.message, waiting.receiver));
                    }
                    None => break,
                }
            }
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::{AclMessage, Performative};

    fn msg(concept: Option<&str>) -> SharedMessage {
        let mut builder = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("s@t"))
            .receiver(AgentId::new("r@t"));
        if let Some(concept) = concept {
            builder = builder.content(Value::map([("concept", Value::symbol(concept))]));
        }
        builder.build().unwrap().into_shared()
    }

    #[test]
    fn classes_follow_the_lattice() {
        assert_eq!(MessageClass::of(&msg(Some("alert"))), MessageClass::Alert);
        assert_eq!(
            MessageClass::of(&msg(Some("analysis-task"))),
            MessageClass::Broker
        );
        assert_eq!(MessageClass::of(&msg(Some("done"))), MessageClass::Broker);
        assert_eq!(
            MessageClass::of(&msg(Some("data-ready"))),
            MessageClass::Broker
        );
        assert_eq!(
            MessageClass::of(&msg(Some("collected-batch"))),
            MessageClass::Bulk
        );
        assert_eq!(
            MessageClass::of(&msg(Some("observation"))),
            MessageClass::Bulk
        );
        assert_eq!(
            MessageClass::of(&msg(Some("resource-profile"))),
            MessageClass::Report
        );
        assert_eq!(MessageClass::of(&msg(None)), MessageClass::Report);
        assert!(MessageClass::Alert > MessageClass::Broker);
        assert!(MessageClass::Broker > MessageClass::Report);
        assert!(MessageClass::Report > MessageClass::Bulk);
    }

    fn tracker(capacity: usize, policy: OverflowPolicy) -> MailboxTracker {
        MailboxTracker::new(MailboxConfig::new(capacity, policy), None, None)
    }

    fn receiver() -> AgentId {
        AgentId::new("r@t")
    }

    #[test]
    fn budget_admits_then_defers_under_block() {
        let mut t = tracker(2, OverflowPolicy::Block);
        let r = receiver();
        assert_eq!(t.admit("c", &msg(None), &r, 0), Admission::Deliver);
        assert_eq!(t.admit("c", &msg(None), &r, 0), Admission::Deliver);
        assert_eq!(t.admit("c", &msg(None), &r, 0), Admission::Deferred);
        assert_eq!(t.admit("c", &msg(None), &r, 0), Admission::Deferred);
        assert_eq!(t.stats().deferred, 2);
        assert_eq!(t.stats().shed_total(), 0);
        assert_eq!(t.stats().highwater, 2);
        // New window: the two waiting legs drain within budget.
        assert_eq!(t.begin_window().len(), 2);
        assert_eq!(t.admit("c", &msg(None), &r, 0), Admission::Deferred);
    }

    #[test]
    fn shed_oldest_evicts_the_front_of_the_waiting_queue() {
        let mut t = tracker(1, OverflowPolicy::ShedOldest);
        let r = receiver();
        assert_eq!(t.admit("c", &msg(Some("alert")), &r, 0), Admission::Deliver);
        assert_eq!(
            t.admit("c", &msg(Some("collected-batch")), &r, 0),
            Admission::Deferred
        );
        // Queue full: the waiting batch is evicted for the newer alert.
        assert_eq!(
            t.admit("c", &msg(Some("alert")), &r, 0),
            Admission::Deferred
        );
        assert_eq!(t.stats().shed(MessageClass::Bulk), 1);
        assert_eq!(t.stats().highwater, 1);
        let due = t.begin_window();
        assert_eq!(due.len(), 1);
    }

    #[test]
    fn shed_by_priority_prefers_low_classes_and_spares_alerts() {
        let mut t = tracker(1, OverflowPolicy::ShedByPriority);
        let r = receiver();
        assert_eq!(
            t.admit("c", &msg(Some("observation")), &r, 0),
            Admission::Deliver
        );
        assert_eq!(
            t.admit("c", &msg(Some("alert")), &r, 0),
            Admission::Deferred
        );
        // Incoming bulk is the least important candidate: shed on arrival.
        assert_eq!(
            t.admit("c", &msg(Some("collected-batch")), &r, 0),
            Admission::Shed
        );
        assert_eq!(t.stats().shed(MessageClass::Bulk), 1);
        // Against a waiting alert, even broker traffic is the lesser
        // candidate and is shed on arrival.
        assert_eq!(t.admit("c", &msg(Some("done")), &r, 0), Admission::Shed);
        assert_eq!(t.stats().shed(MessageClass::Broker), 1);

        // A higher-class arrival evicts a lower-class waiter instead.
        let mut t = tracker(1, OverflowPolicy::ShedByPriority);
        assert_eq!(t.admit("c", &msg(None), &r, 0), Admission::Deliver);
        assert_eq!(
            t.admit("c", &msg(Some("collected-batch")), &r, 0),
            Admission::Deferred
        );
        assert_eq!(
            t.admit("c", &msg(Some("alert")), &r, 0),
            Admission::Deferred
        );
        assert_eq!(t.stats().shed(MessageClass::Bulk), 1);
        assert_eq!(t.stats().shed(MessageClass::Alert), 0);
    }

    #[test]
    fn separate_containers_have_separate_budgets() {
        let mut t = tracker(1, OverflowPolicy::Block);
        let r = receiver();
        assert_eq!(t.admit("a", &msg(None), &r, 0), Admission::Deliver);
        assert_eq!(t.admit("b", &msg(None), &r, 0), Admission::Deliver);
        assert_eq!(t.admit("a", &msg(None), &r, 0), Admission::Deferred);
        assert_eq!(t.admit("b", &msg(None), &r, 0), Admission::Deferred);
        assert_eq!(t.stats().highwater, 1, "per-container depth, not global");
    }

    #[test]
    fn alerts_are_never_shed_even_when_everything_is_an_alert() {
        let mut t = tracker(1, OverflowPolicy::ShedByPriority);
        let r = receiver();
        for _ in 0..5 {
            t.admit("c", &msg(Some("alert")), &r, 0);
        }
        assert_eq!(t.stats().shed_total(), 0);
        // 1 delivered, 4 waiting: the bound is exceeded by design.
        assert_eq!(t.stats().highwater, 4);
        // Every waiting alert eventually drains.
        let mut drained = 0;
        loop {
            let due = t.begin_window();
            if due.is_empty() {
                break;
            }
            drained += due.len();
        }
        assert_eq!(drained, 4);
    }
}
