//! Agent platform for `agentgrid` — the AgentLight/FIPA substitute.
//!
//! The paper builds its grids on AgentLight, a FIPA-compliant platform of
//! "small agents" (§2). This crate provides the equivalent runtime:
//!
//! * an [`Agent`] trait with lifecycle callbacks (`setup`, `on_message`,
//!   `on_tick`) and an [`AgentCtx`] handle for sending messages, reading
//!   the clock and querying the directory;
//! * [`Container`]s that host agents (the paper's unit of grid
//!   membership and load distribution);
//! * a [`Platform`] that steps containers deterministically, routes
//!   [`AclMessage`]s between them, and offers an AMS (agent lifecycle)
//!   and a [`DirectoryFacilitator`] holding per-container
//!   [`ResourceProfile`]s (Fig. 4);
//! * **mobility**: [`Platform::migrate`] moves a live agent (with its
//!   state) between containers — the paper's future-work item on
//!   migrating analysis activities;
//! * failure injection: containers can be killed and messages dropped,
//!   so fault-tolerance behaviour is testable.
//!
//! The default platform is *synchronous and deterministic*: `step(now_ms)`
//! delivers all in-flight messages, then ticks every agent, in name
//! order. Determinism makes grid behaviour reproducible in tests and
//! benchmarks; the wall-clock performance dimension is measured
//! separately on `agentgrid-des`. For a deployment-shaped runtime with
//! one OS thread per container see [`threaded`], and for driver code
//! that should run on either execution model, the [`runtime::Runtime`]
//! trait.
//!
//! # Examples
//!
//! ```
//! use agentgrid_acl::{AclMessage, AgentId, Performative, Value};
//! use agentgrid_platform::{Agent, AgentCtx, Platform};
//!
//! struct Echo;
//! impl Agent for Echo {
//!     fn on_message(&mut self, msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
//!         ctx.send(msg.reply(Performative::Inform, Value::symbol("echoed")));
//!     }
//! }
//!
//! struct Caller { heard: bool }
//! impl Agent for Caller {
//!     fn setup(&mut self, ctx: &mut AgentCtx<'_>) {
//!         let msg = AclMessage::builder(Performative::Request)
//!             .sender(ctx.self_id().clone())
//!             .receiver(AgentId::new("echo@main"))
//!             .build()
//!             .unwrap();
//!         ctx.send(msg);
//!     }
//!     fn on_message(&mut self, _msg: &AclMessage, _ctx: &mut AgentCtx<'_>) {
//!         self.heard = true;
//!     }
//! }
//!
//! let mut platform = Platform::new("main");
//! platform.add_container("main");
//! platform.spawn("main", "echo", Echo).unwrap();
//! platform.spawn("main", "caller", Caller { heard: false }).unwrap();
//! platform.run_until_idle(0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod container;
mod delivery;
mod df;
pub mod net;
pub mod overload;
mod platform;
pub mod pool;
pub mod runtime;
pub mod threaded;

pub use agent::{Agent, AgentCtx, AgentState};
pub use agentgrid_acl::ontology::ResourceProfile;
pub use container::Container;
pub use df::{DirectoryFacilitator, ServiceEntry};
pub use net::{LinkFaults, LinkSelector, NetCommand, NetStats, ReliabilityConfig};
pub use overload::{MailboxConfig, MessageClass, OverflowPolicy, OverloadStats, PressureSignal};
pub use platform::{FaultSet, Platform, PlatformError, TransportFault};
pub use pool::PoolRuntime;
pub use runtime::{Runtime, ThreadedRuntime};
pub use threaded::{RunStats, RunningPlatform, ThreadedPlatform};

// Telemetry surface, re-exported so runtime users attach sinks without
// naming the telemetry crate.
pub use agentgrid_telemetry::{ContainerScope, ContainerStats, Telemetry, TelemetryHandle};

// Re-exported so platform users need not depend on the acl crate
// explicitly for the common types.
pub use agentgrid_acl::{AclMessage, AgentId, Performative, SharedMessage, Value};
