use std::collections::BTreeMap;

use agentgrid_acl::ontology::ResourceProfile;
use agentgrid_acl::AgentId;

/// One service registration in the directory.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceEntry {
    /// The providing agent.
    pub provider: AgentId,
    /// Service type (e.g. `"analysis"`, `"collection"`).
    pub service: String,
    /// Free-form properties (e.g. the skills offered).
    pub properties: Vec<String>,
}

/// The FIPA Directory Facilitator: yellow pages plus the grid root's
/// container directory (the paper's "D1", Fig. 4).
///
/// Two registries live here:
///
/// * **services** — agents advertising capabilities, searchable by
///   service type and property;
/// * **container profiles** — one [`ResourceProfile`] per container,
///   registered when the container joins the grid and refreshed as its
///   load changes. Load balancing reads these.
///
/// # Examples
///
/// ```
/// use agentgrid_acl::AgentId;
/// use agentgrid_platform::{DirectoryFacilitator, ResourceProfile};
///
/// let mut df = DirectoryFacilitator::new();
/// df.register_service(AgentId::new("an-1@pg"), "analysis", ["cpu", "disk"]);
/// let hits = df.search("analysis");
/// assert_eq!(hits.len(), 1);
/// assert!(df.providers_with("analysis", "disk").count() == 1);
///
/// df.register_container(ResourceProfile::new("pg-1", 2.0, 1.0, 4096, ["cpu"]));
/// assert_eq!(df.container_profiles().count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DirectoryFacilitator {
    services: Vec<ServiceEntry>,
    containers: BTreeMap<String, ResourceProfile>,
    /// Last-seen simulated time per container (heartbeat extension of
    /// the resource profiles; liveness detection reads staleness).
    heartbeats: BTreeMap<String, u64>,
}

impl DirectoryFacilitator {
    /// Creates an empty directory.
    pub fn new() -> Self {
        DirectoryFacilitator::default()
    }

    /// Registers (or re-registers) a service for an agent. An agent may
    /// offer many services; re-registering the same `(provider, service)`
    /// replaces its properties.
    pub fn register_service(
        &mut self,
        provider: AgentId,
        service: impl Into<String>,
        properties: impl IntoIterator<Item = impl Into<String>>,
    ) {
        let service = service.into();
        let properties: Vec<String> = properties.into_iter().map(Into::into).collect();
        if let Some(existing) = self
            .services
            .iter_mut()
            .find(|e| e.provider == provider && e.service == service)
        {
            existing.properties = properties;
        } else {
            self.services.push(ServiceEntry {
                provider,
                service,
                properties,
            });
        }
    }

    /// Removes every registration of an agent (deregistration on death
    /// or migration).
    pub fn deregister(&mut self, provider: &AgentId) {
        self.services.retain(|e| &e.provider != provider);
    }

    /// All entries for a service type, in registration order.
    pub fn search(&self, service: &str) -> Vec<&ServiceEntry> {
        self.services
            .iter()
            .filter(|e| e.service == service)
            .collect()
    }

    /// Providers of `service` that also declare `property`.
    pub fn providers_with<'a>(
        &'a self,
        service: &'a str,
        property: &'a str,
    ) -> impl Iterator<Item = &'a AgentId> + 'a {
        self.services
            .iter()
            .filter(move |e| e.service == service && e.properties.iter().any(|p| p == property))
            .map(|e| &e.provider)
    }

    /// Registers (or refreshes) a container's resource profile — the
    /// Fig. 4 interaction: "when a container is added to the grid, it
    /// will inform the profile of the resource on which it is running".
    pub fn register_container(&mut self, profile: ResourceProfile) {
        self.heartbeats
            .entry(profile.container.clone())
            .or_insert(0);
        self.containers.insert(profile.container.clone(), profile);
    }

    /// Removes a container's profile (container left or died).
    pub fn deregister_container(&mut self, container: &str) -> Option<ResourceProfile> {
        self.heartbeats.remove(container);
        self.containers.remove(container)
    }

    /// Records a liveness heartbeat for a container at simulated time
    /// `now_ms`. Containers heartbeat through their resident agents'
    /// ticks; the grid root reads staleness to mark containers suspect
    /// or dead.
    pub fn record_heartbeat(&mut self, container: &str, now_ms: u64) {
        let beat = self.heartbeats.entry(container.to_owned()).or_insert(0);
        *beat = (*beat).max(now_ms);
    }

    /// The last heartbeat recorded for a container, if any.
    pub fn last_heartbeat(&self, container: &str) -> Option<u64> {
        self.heartbeats.get(container).copied()
    }

    /// Updates only the load figure of a registered container. Returns
    /// `false` if the container is unknown.
    pub fn update_load(&mut self, container: &str, load: f64) -> bool {
        match self.containers.get_mut(container) {
            Some(profile) => {
                profile.load = load;
                true
            }
            None => false,
        }
    }

    /// A container's profile.
    pub fn container_profile(&self, container: &str) -> Option<&ResourceProfile> {
        self.containers.get(container)
    }

    /// All container profiles, in container-name order.
    pub fn container_profiles(&self) -> impl Iterator<Item = &ResourceProfile> {
        self.containers.values()
    }

    /// Containers declaring a skill, in name order.
    pub fn containers_with_skill<'a>(
        &'a self,
        skill: &'a str,
    ) -> impl Iterator<Item = &'a ResourceProfile> + 'a {
        self.containers.values().filter(move |p| p.has_skill(skill))
    }

    /// Number of service registrations.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_search_services() {
        let mut df = DirectoryFacilitator::new();
        df.register_service(AgentId::new("a"), "analysis", ["cpu"]);
        df.register_service(AgentId::new("b"), "analysis", ["disk"]);
        df.register_service(AgentId::new("c"), "collection", ["snmp"]);
        assert_eq!(df.search("analysis").len(), 2);
        assert_eq!(df.search("collection").len(), 1);
        assert_eq!(df.search("nothing").len(), 0);
    }

    #[test]
    fn reregistration_replaces_properties() {
        let mut df = DirectoryFacilitator::new();
        df.register_service(AgentId::new("a"), "analysis", ["cpu"]);
        df.register_service(AgentId::new("a"), "analysis", ["disk"]);
        assert_eq!(df.service_count(), 1);
        assert_eq!(df.search("analysis")[0].properties, ["disk"]);
    }

    #[test]
    fn providers_with_filters_by_property() {
        let mut df = DirectoryFacilitator::new();
        df.register_service(AgentId::new("a"), "analysis", ["cpu", "correlate"]);
        df.register_service(AgentId::new("b"), "analysis", ["disk"]);
        let hits: Vec<_> = df.providers_with("analysis", "correlate").collect();
        assert_eq!(hits, [&AgentId::new("a")]);
    }

    #[test]
    fn deregister_removes_all_entries_of_agent() {
        let mut df = DirectoryFacilitator::new();
        df.register_service(AgentId::new("a"), "x", ["1"]);
        df.register_service(AgentId::new("a"), "y", ["2"]);
        df.register_service(AgentId::new("b"), "x", ["3"]);
        df.deregister(&AgentId::new("a"));
        assert_eq!(df.service_count(), 1);
        assert_eq!(df.search("x").len(), 1);
    }

    #[test]
    fn container_registry_tracks_profiles_and_load() {
        let mut df = DirectoryFacilitator::new();
        df.register_container(ResourceProfile::new("c1", 1.0, 1.0, 1024, ["cpu"]));
        df.register_container(ResourceProfile::new("c2", 2.0, 1.0, 2048, ["disk"]));
        assert!(df.update_load("c1", 0.8));
        assert!(!df.update_load("ghost", 0.1));
        assert_eq!(df.container_profile("c1").unwrap().load, 0.8);
        let with_disk: Vec<_> = df.containers_with_skill("disk").collect();
        assert_eq!(with_disk.len(), 1);
        assert_eq!(with_disk[0].container, "c2");
    }

    #[test]
    fn deregister_container_removes_profile() {
        let mut df = DirectoryFacilitator::new();
        df.register_container(ResourceProfile::new("c1", 1.0, 1.0, 1, ["x"]));
        assert!(df.deregister_container("c1").is_some());
        assert!(df.deregister_container("c1").is_none());
        assert_eq!(df.container_profiles().count(), 0);
    }

    #[test]
    fn heartbeats_track_last_seen_and_never_go_backwards() {
        let mut df = DirectoryFacilitator::new();
        assert_eq!(df.last_heartbeat("c1"), None);
        df.register_container(ResourceProfile::new("c1", 1.0, 1.0, 1, ["x"]));
        assert_eq!(df.last_heartbeat("c1"), Some(0));
        df.record_heartbeat("c1", 60_000);
        df.record_heartbeat("c1", 30_000); // stale update is ignored
        assert_eq!(df.last_heartbeat("c1"), Some(60_000));
        df.deregister_container("c1");
        assert_eq!(df.last_heartbeat("c1"), None);
        // Re-registration starts a fresh heartbeat history.
        df.register_container(ResourceProfile::new("c1", 1.0, 1.0, 1, ["x"]));
        assert_eq!(df.last_heartbeat("c1"), Some(0));
    }
}
