//! Property-based tests for the agent platform: message conservation and
//! lifecycle invariants under arbitrary traffic.

use agentgrid_acl::{AclMessage, AgentId, Performative, Value};
use agentgrid_platform::{Agent, AgentCtx, Platform};
use proptest::prelude::*;

/// Counts deliveries; never replies (pure sink).
struct Sink;
impl Agent for Sink {}

/// Forwards each request to a fixed peer (generates secondary traffic).
struct Relay {
    peer: AgentId,
}
impl Agent for Relay {
    fn on_message(&mut self, msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
        if msg.performative() == Performative::Request {
            let fwd = AclMessage::builder(Performative::Inform)
                .sender(ctx.self_id().clone())
                .receiver(self.peer.clone())
                .content(msg.content().clone())
                .build()
                .unwrap();
            ctx.send(fwd);
        }
    }
}

proptest! {
    /// Conservation: every posted message is either delivered or
    /// dead-lettered, and relays add exactly one delivery per relayed
    /// request.
    #[test]
    fn messages_are_conserved(
        // Each entry: (target selector, is_request)
        traffic in prop::collection::vec((0u8..4, any::<bool>()), 1..60),
    ) {
        let mut p = Platform::new("prop");
        p.add_container("c1").add_container("c2");
        let sink = p.spawn("c2", "sink", Sink).unwrap();
        let relay = p.spawn("c1", "relay", Relay { peer: sink.clone() }).unwrap();

        let mut expect_direct = 0u64;     // messages to live agents
        let mut expect_dead = 0usize;     // messages to ghosts
        let mut expect_relayed = 0u64;    // extra inform hops relay→sink
        for (selector, is_request) in &traffic {
            let target = match selector {
                0 => sink.clone(),
                1 => relay.clone(),
                2 => AgentId::new("ghost@prop"),
                _ => AgentId::new("other-ghost@prop"),
            };
            let performative = if *is_request {
                Performative::Request
            } else {
                Performative::Inform
            };
            match selector {
                0 => expect_direct += 1,
                1 => {
                    expect_direct += 1;
                    if *is_request {
                        expect_relayed += 1;
                    }
                }
                _ => expect_dead += 1,
            }
            let msg = AclMessage::builder(performative)
                .sender(AgentId::new("driver"))
                .receiver(target)
                .content(Value::Int(1))
                .build()
                .unwrap();
            p.post(msg);
        }
        p.run_until_idle(0);
        prop_assert_eq!(p.delivered_count(), expect_direct + expect_relayed);
        prop_assert_eq!(p.dead_letters().len(), expect_dead);
    }

    /// Migrating an agent any number of times never loses it and keeps
    /// it addressable.
    #[test]
    fn migration_chains_preserve_addressability(moves in prop::collection::vec(0u8..3, 1..20)) {
        let mut p = Platform::new("prop");
        p.add_container("a").add_container("b").add_container("c");
        let id = p.spawn("a", "wanderer", Sink).unwrap();
        for m in moves {
            let to = ["a", "b", "c"][m as usize];
            // Migrating to the current container is an error-free no-op
            // or a move; either way the agent must remain findable.
            let _ = p.migrate(&id, to);
            prop_assert!(p.find_agent(&id).is_some());
        }
        // And it still receives mail wherever it ended up.
        let msg = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("driver"))
            .receiver(id)
            .build()
            .unwrap();
        p.post(msg);
        p.run_until_idle(0);
        prop_assert_eq!(p.delivered_count(), 1);
    }

    /// Suspend/resume cycles never drop queued messages.
    #[test]
    fn suspension_buffers_but_never_drops(pattern in prop::collection::vec(any::<bool>(), 1..30)) {
        let mut p = Platform::new("prop");
        p.add_container("c");
        let id = p.spawn("c", "sink", Sink).unwrap();
        let mut sent = 0u64;
        for suspend in pattern {
            if suspend {
                p.suspend(&id).unwrap();
            } else {
                p.resume(&id).unwrap();
            }
            let msg = AclMessage::builder(Performative::Inform)
                .sender(AgentId::new("driver"))
                .receiver(id.clone())
                .build()
                .unwrap();
            p.post(msg);
            sent += 1;
            p.step(0);
        }
        p.resume(&id).unwrap();
        p.run_until_idle(0);
        prop_assert_eq!(p.delivered_count(), sent);
        prop_assert!(p.dead_letters().is_empty());
    }
}
