use std::collections::BTreeMap;

use crate::Device;

/// A link between two devices (or two sites) with a latency budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// One endpoint (device or site name).
    pub a: String,
    /// The other endpoint.
    pub b: String,
    /// One-way latency in milliseconds.
    pub latency_ms: u64,
    /// Nominal bandwidth in bytes per second.
    pub bandwidth_bps: u64,
}

impl Link {
    /// Creates a link.
    pub fn new(
        a: impl Into<String>,
        b: impl Into<String>,
        latency_ms: u64,
        bandwidth_bps: u64,
    ) -> Self {
        Link {
            a: a.into(),
            b: b.into(),
            latency_ms,
            bandwidth_bps,
        }
    }

    /// Whether the link touches `endpoint`.
    pub fn touches(&self, endpoint: &str) -> bool {
        self.a == endpoint || self.b == endpoint
    }
}

/// A management site: a named group of devices (the paper's "Site I",
/// "Site II" in Fig. 2).
#[derive(Debug, Default)]
pub struct Site {
    name: String,
    devices: Vec<String>,
}

impl Site {
    /// The site name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names of the devices at this site.
    pub fn device_names(&self) -> &[String] {
        &self.devices
    }
}

/// The whole managed network: devices grouped into sites, plus links.
///
/// # Examples
///
/// ```
/// use agentgrid_net::{Device, DeviceKind, Network};
///
/// let mut net = Network::new();
/// net.add_device(Device::builder("r1", DeviceKind::Router).site("hq").build());
/// net.add_device(Device::builder("sw1", DeviceKind::Switch).site("hq").build());
/// net.add_device(Device::builder("srv1", DeviceKind::Server).site("branch").build());
///
/// assert_eq!(net.device_count(), 3);
/// assert_eq!(net.sites().count(), 2);
/// net.tick_all(60_000);
/// assert_eq!(net.device("r1").unwrap().now_ms(), 60_000);
/// ```
#[derive(Debug, Default)]
pub struct Network {
    devices: BTreeMap<String, Device>,
    sites: BTreeMap<String, Site>,
    links: Vec<Link>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a device, registering its site.
    ///
    /// # Panics
    ///
    /// Panics if a device with the same name already exists.
    pub fn add_device(&mut self, device: Device) {
        let name = device.name().to_owned();
        assert!(
            !self.devices.contains_key(&name),
            "duplicate device name `{name}`"
        );
        let site = self
            .sites
            .entry(device.site().to_owned())
            .or_insert_with(|| Site {
                name: device.site().to_owned(),
                devices: Vec::new(),
            });
        site.devices.push(name.clone());
        self.devices.insert(name, device);
    }

    /// Adds a link.
    pub fn add_link(&mut self, link: Link) {
        self.links.push(link);
    }

    /// Looks up a device.
    pub fn device(&self, name: &str) -> Option<&Device> {
        self.devices.get(name)
    }

    /// Looks up a device mutably (for ticking, SNMP serving, faults).
    pub fn device_mut(&mut self, name: &str) -> Option<&mut Device> {
        self.devices.get_mut(name)
    }

    /// Iterates over devices in name order.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.values()
    }

    /// Iterates over devices mutably.
    pub fn devices_mut(&mut self) -> impl Iterator<Item = &mut Device> {
        self.devices.values_mut()
    }

    /// Iterates over sites in name order.
    pub fn sites(&self) -> impl Iterator<Item = &Site> {
        self.sites.values()
    }

    /// Looks up a site.
    pub fn site(&self, name: &str) -> Option<&Site> {
        self.sites.get(name)
    }

    /// The links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Advances every device to simulated time `t_ms`.
    pub fn tick_all(&mut self, t_ms: u64) {
        for device in self.devices.values_mut() {
            device.tick(t_ms);
        }
    }

    /// Splits the named sites out into their own [`Network`], moving
    /// their devices and every link whose endpoints both stay inside
    /// the partition (a link endpoint may name a device or a site).
    /// Links crossing the cut remain behind — a partition only ever
    /// sees topology it manages. Site names not present are ignored,
    /// so a deterministic partitioner can hand over its share blindly.
    pub fn split_sites(&mut self, site_names: &[&str]) -> Network {
        let mut part = Network::new();
        for name in site_names {
            let Some(site) = self.sites.remove(*name) else {
                continue;
            };
            for device in &site.devices {
                let device = self.devices.remove(device).expect("site lists its devices");
                // Re-register through `add_device` so the partition
                // rebuilds its own site table.
                part.add_device(device);
            }
        }
        let inside = |endpoint: &str| {
            part.sites.contains_key(endpoint) || part.devices.contains_key(endpoint)
        };
        let mut kept = Vec::with_capacity(self.links.len());
        for link in self.links.drain(..) {
            if inside(&link.a) && inside(&link.b) {
                part.links.push(link);
            } else {
                kept.push(link);
            }
        }
        self.links = kept;
        part
    }

    /// Latency between two endpoints, if a direct link exists.
    pub fn latency_between(&self, a: &str, b: &str) -> Option<u64> {
        self.links
            .iter()
            .find(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
            .map(|l| l.latency_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceKind;

    fn network() -> Network {
        let mut net = Network::new();
        net.add_device(Device::builder("r1", DeviceKind::Router).site("hq").build());
        net.add_device(Device::builder("s1", DeviceKind::Server).site("hq").build());
        net.add_device(
            Device::builder("s2", DeviceKind::Server)
                .site("branch")
                .build(),
        );
        net.add_link(Link::new("hq", "branch", 35, 10_000_000));
        net
    }

    #[test]
    fn sites_collect_their_devices() {
        let net = network();
        assert_eq!(net.site("hq").unwrap().device_names(), ["r1", "s1"]);
        assert_eq!(net.site("branch").unwrap().device_names(), ["s2"]);
        assert_eq!(net.sites().count(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate device name")]
    fn duplicate_names_are_rejected() {
        let mut net = network();
        net.add_device(Device::builder("r1", DeviceKind::Router).build());
    }

    #[test]
    fn tick_all_advances_every_device() {
        let mut net = network();
        net.tick_all(30_000);
        assert!(net.devices().all(|d| d.now_ms() == 30_000));
    }

    #[test]
    fn latency_lookup_is_symmetric() {
        let net = network();
        assert_eq!(net.latency_between("hq", "branch"), Some(35));
        assert_eq!(net.latency_between("branch", "hq"), Some(35));
        assert_eq!(net.latency_between("hq", "nowhere"), None);
    }

    #[test]
    fn split_sites_moves_devices_and_interior_links() {
        let mut net = network();
        net.add_link(Link::new("r1", "s1", 1, 1_000));
        let part = net.split_sites(&["hq", "nowhere"]);
        assert_eq!(part.device_count(), 2);
        assert_eq!(part.site("hq").unwrap().device_names(), ["r1", "s1"]);
        assert_eq!(part.latency_between("r1", "s1"), Some(1));
        // The cross-cut hq<->branch link stays behind; branch does too.
        assert_eq!(net.device_count(), 1);
        assert_eq!(net.links().len(), 1);
        assert!(part.latency_between("hq", "branch").is_none());
    }

    #[test]
    fn links_touch_their_endpoints() {
        let link = Link::new("a", "b", 1, 2);
        assert!(link.touches("a"));
        assert!(link.touches("b"));
        assert!(!link.touches("c"));
    }
}
