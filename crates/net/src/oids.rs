//! Well-known object identifiers used by the simulated devices.
//!
//! A pragmatic subset of MIB-2 (`system`, `interfaces`) and the
//! Host-Resources MIB — the objects the paper's motivating example
//! collects: "processor usage, memory availability, available disk space
//! and the list of processes" (§4.1).

use crate::Oid;

/// `sysDescr.0` — device description string.
pub fn sys_descr() -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1, 1, 1, 0])
}

/// `sysUpTime.0` — time since boot, in hundredths of a second.
pub fn sys_uptime() -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1, 1, 3, 0])
}

/// `sysName.0` — administratively assigned name.
pub fn sys_name() -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1, 1, 5, 0])
}

/// Root of the interfaces table (`ifTable`).
pub fn if_table() -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1, 2, 2, 1])
}

/// `ifOperStatus.<index>` — 1 = up, 2 = down.
pub fn if_oper_status(index: u32) -> Oid {
    if_table().extend([8, index])
}

/// `ifInOctets.<index>` — received byte counter.
pub fn if_in_octets(index: u32) -> Oid {
    if_table().extend([10, index])
}

/// `ifOutOctets.<index>` — transmitted byte counter.
pub fn if_out_octets(index: u32) -> Oid {
    if_table().extend([16, index])
}

/// `hrSystemProcesses.0` — number of running processes.
pub fn hr_system_processes() -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1, 25, 1, 6, 0])
}

/// Root of the host-resources storage table.
pub fn hr_storage_table() -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1, 25, 2, 3, 1])
}

/// `hrStorageSize.<index>` — total size of a storage area, in units.
pub fn hr_storage_size(index: u32) -> Oid {
    hr_storage_table().extend([5, index])
}

/// `hrStorageUsed.<index>` — used space of a storage area, in units.
pub fn hr_storage_used(index: u32) -> Oid {
    hr_storage_table().extend([6, index])
}

/// `hrProcessorLoad.<index>` — average CPU load percentage over the last
/// minute.
pub fn hr_processor_load(index: u32) -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1, 25, 3, 3, 1, 2]).child(index)
}

/// Storage index conventionally used for RAM on the simulated servers.
pub const STORAGE_RAM: u32 = 1;
/// Storage index conventionally used for the main disk.
pub const STORAGE_DISK: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oids_are_under_mib2_or_host_resources() {
        let mib2: Oid = Oid::from([1, 3, 6, 1, 2, 1]);
        for oid in [
            sys_descr(),
            sys_uptime(),
            sys_name(),
            if_oper_status(1),
            if_in_octets(3),
            if_out_octets(3),
            hr_system_processes(),
            hr_storage_size(1),
            hr_storage_used(2),
            hr_processor_load(1),
        ] {
            assert!(oid.starts_with(&mib2), "{oid}");
        }
    }

    #[test]
    fn table_instances_carry_their_index() {
        assert_eq!(if_in_octets(7).last(), Some(7));
        assert_eq!(hr_processor_load(2).last(), Some(2));
        assert_ne!(if_in_octets(1), if_out_octets(1));
    }

    #[test]
    fn storage_columns_share_the_table_prefix() {
        assert!(hr_storage_size(1).starts_with(&hr_storage_table()));
        assert!(hr_storage_used(1).starts_with(&hr_storage_table()));
    }
}
