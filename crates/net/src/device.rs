use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::fault::FaultKind;
use crate::metrics::{CounterGen, MetricGen, Ramp, RandomWalk};
use crate::{oids, MibTree, MibValue, Oid};

/// The class of a managed device, which determines its default MIB shape
/// and traffic profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A router: many interfaces, heavy traffic counters.
    Router,
    /// A switch: many interfaces, moderate traffic.
    Switch,
    /// A server: few interfaces, host resources dominate.
    Server,
}

impl DeviceKind {
    /// Human-readable description used for `sysDescr`.
    pub fn descr(self) -> &'static str {
        match self {
            DeviceKind::Router => "agentgrid simulated router",
            DeviceKind::Switch => "agentgrid simulated switch",
            DeviceKind::Server => "agentgrid simulated server",
        }
    }

    fn default_interfaces(self) -> u32 {
        match self {
            DeviceKind::Router => 4,
            DeviceKind::Switch => 8,
            DeviceKind::Server => 1,
        }
    }

    fn traffic_rate(self) -> f64 {
        match self {
            DeviceKind::Router => 2_000_000.0,
            DeviceKind::Switch => 800_000.0,
            DeviceKind::Server => 200_000.0,
        }
    }
}

/// What a dynamic MIB object semantically is — used to apply faults to
/// the right objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricRole {
    CpuLoad(u32),
    IfInOctets(u32),
    IfOutOctets(u32),
    StorageUsed(u32),
    ProcessCount,
}

#[derive(Debug)]
struct Dynamic {
    oid: Oid,
    role: MetricRole,
    gen: Box<dyn MetricGen>,
}

/// One simulated managed device.
///
/// A device owns a [`MibTree`]; calling [`tick`](Device::tick) advances
/// simulated time, re-sampling every dynamic object (CPU load, interface
/// counters, storage, process count) and applying any active
/// [`FaultKind`]s. Management access goes through [`crate::snmp`] or
/// [`crate::cli`].
///
/// # Examples
///
/// ```
/// use agentgrid_net::{Device, DeviceKind, FaultKind, oids};
///
/// let mut dev = Device::builder("srv-1", DeviceKind::Server).seed(1).build();
/// dev.tick(60_000);
/// dev.inject(FaultKind::CpuRunaway);
/// dev.tick(120_000);
/// let load = dev.mib().get(&oids::hr_processor_load(1)).unwrap();
/// assert!(load.as_f64().unwrap() >= 95.0);
/// ```
#[derive(Debug)]
pub struct Device {
    name: String,
    kind: DeviceKind,
    site: String,
    mib: MibTree,
    dynamics: Vec<Dynamic>,
    rng: StdRng,
    faults: Vec<FaultKind>,
    fault_ramps: Vec<(u32, Ramp)>,
    interfaces: u32,
    disk_units: u64,
    ram_units: u64,
    now_ms: u64,
}

impl Device {
    /// Starts building a device.
    pub fn builder(name: impl Into<String>, kind: DeviceKind) -> DeviceBuilder {
        DeviceBuilder {
            name: name.into(),
            kind,
            site: "default".to_owned(),
            interfaces: None,
            cpus: 1,
            ram_units: 8_192,
            disk_units: 500_000,
            seed: 0,
        }
    }

    /// The device name (also `sysName`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device class.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The site the device belongs to.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// Read access to the MIB.
    pub fn mib(&self) -> &MibTree {
        &self.mib
    }

    /// Mutable access to the MIB (used by `snmp::serve` for `Set`).
    pub(crate) fn mib_mut(&mut self) -> &mut MibTree {
        &mut self.mib
    }

    /// Number of network interfaces.
    pub fn interface_count(&self) -> u32 {
        self.interfaces
    }

    /// Whether the device currently answers management requests.
    pub fn is_reachable(&self) -> bool {
        !self.faults.contains(&FaultKind::Unreachable)
    }

    /// Currently active faults.
    pub fn active_faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// Last simulated time the device was ticked to, in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Activates a fault. Injecting an already-active fault is a no-op.
    pub fn inject(&mut self, fault: FaultKind) {
        if self.faults.contains(&fault) {
            return;
        }
        match fault {
            FaultKind::DiskFilling => {
                let used = self.storage_used(oids::STORAGE_DISK);
                // Fill ~2% of the disk per minute until full.
                let slope = self.disk_units as f64 * 0.02 / 60.0;
                self.fault_ramps.push((
                    oids::STORAGE_DISK,
                    Ramp::new(used, slope, self.disk_units as f64).with_origin(self.now_ms),
                ));
            }
            FaultKind::MemoryLeak => {
                let used = self.storage_used(oids::STORAGE_RAM);
                let slope = self.ram_units as f64 * 0.05 / 60.0;
                self.fault_ramps.push((
                    oids::STORAGE_RAM,
                    Ramp::new(used, slope, self.ram_units as f64).with_origin(self.now_ms),
                ));
            }
            _ => {}
        }
        self.faults.push(fault);
    }

    /// Clears a fault. Clearing an inactive fault is a no-op.
    pub fn clear(&mut self, fault: FaultKind) {
        self.faults.retain(|f| *f != fault);
        match fault {
            FaultKind::DiskFilling => self.fault_ramps.retain(|(i, _)| *i != oids::STORAGE_DISK),
            FaultKind::MemoryLeak => self.fault_ramps.retain(|(i, _)| *i != oids::STORAGE_RAM),
            _ => {}
        }
    }

    fn storage_used(&self, index: u32) -> f64 {
        self.mib
            .get(&oids::hr_storage_used(index))
            .and_then(MibValue::as_f64)
            .unwrap_or(0.0)
    }

    /// Advances the device to absolute simulated time `t_ms`, re-sampling
    /// every dynamic MIB object and applying active faults.
    pub fn tick(&mut self, t_ms: u64) {
        self.now_ms = t_ms;
        self.mib
            .set(oids::sys_uptime(), MibValue::TimeTicks(t_ms / 10));

        let cpu_runaway = self.faults.contains(&FaultKind::CpuRunaway);
        let downed_links: Vec<u32> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                FaultKind::LinkDown(index) => Some(*index),
                _ => None,
            })
            .collect();

        for dynamic in &mut self.dynamics {
            let value = match dynamic.role {
                MetricRole::CpuLoad(_) => {
                    let base = dynamic.gen.sample(t_ms, &mut self.rng);
                    if cpu_runaway {
                        self.rng.random_range(95.0..=100.0)
                    } else {
                        base
                    }
                }
                MetricRole::IfInOctets(index) | MetricRole::IfOutOctets(index) => {
                    if downed_links.contains(&index) {
                        // A downed link stops counting: keep the old value
                        // (the generator is intentionally not sampled, so
                        // it does not accumulate while down).
                        self.mib
                            .get(&dynamic.oid)
                            .and_then(MibValue::as_f64)
                            .unwrap_or(0.0)
                    } else {
                        dynamic.gen.sample(t_ms, &mut self.rng)
                    }
                }
                MetricRole::StorageUsed(index) => {
                    let base = dynamic.gen.sample(t_ms, &mut self.rng);
                    match self.fault_ramps.iter_mut().find(|(i, _)| *i == index) {
                        Some((_, ramp)) => ramp.sample(t_ms, &mut self.rng).max(base),
                        None => base,
                    }
                }
                MetricRole::ProcessCount => dynamic.gen.sample(t_ms, &mut self.rng),
            };
            let mib_value = match dynamic.role {
                MetricRole::CpuLoad(_) => MibValue::Gauge(value.round().max(0.0) as u64),
                MetricRole::IfInOctets(_) | MetricRole::IfOutOctets(_) => {
                    MibValue::Counter(value.max(0.0) as u64)
                }
                MetricRole::StorageUsed(_) => MibValue::Gauge(value.round().max(0.0) as u64),
                MetricRole::ProcessCount => MibValue::Gauge(value.round().max(0.0) as u64),
            };
            self.mib.set(dynamic.oid.clone(), mib_value);
        }

        // Interface oper status reflects link faults directly.
        for index in 1..=self.interfaces {
            let status = if downed_links.contains(&index) { 2 } else { 1 };
            self.mib
                .set(oids::if_oper_status(index), MibValue::Int(status));
        }
    }

    /// Total size of a storage area in units, if it exists.
    pub fn storage_size(&self, index: u32) -> Option<u64> {
        match self.mib.get(&oids::hr_storage_size(index)) {
            Some(MibValue::Gauge(size)) => Some(*size),
            _ => None,
        }
    }
}

/// Builder for [`Device`] (see [`Device::builder`]).
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    name: String,
    kind: DeviceKind,
    site: String,
    interfaces: Option<u32>,
    cpus: u32,
    ram_units: u64,
    disk_units: u64,
    seed: u64,
}

impl DeviceBuilder {
    /// Sets the site name.
    pub fn site(mut self, site: impl Into<String>) -> Self {
        self.site = site.into();
        self
    }

    /// Sets the number of network interfaces.
    pub fn interfaces(mut self, interfaces: u32) -> Self {
        self.interfaces = Some(interfaces);
        self
    }

    /// Sets the number of CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn cpus(mut self, cpus: u32) -> Self {
        assert!(cpus > 0, "a device needs at least one cpu");
        self.cpus = cpus;
        self
    }

    /// Sets RAM size in allocation units (megabytes).
    pub fn ram_units(mut self, units: u64) -> Self {
        self.ram_units = units;
        self
    }

    /// Sets disk size in allocation units (megabytes).
    pub fn disk_units(mut self, units: u64) -> Self {
        self.disk_units = units;
        self
    }

    /// Seeds the device's random generator (deterministic scenarios).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the device with its MIB populated at simulated time 0.
    pub fn build(self) -> Device {
        let interfaces = self.interfaces.unwrap_or(self.kind.default_interfaces());
        // Derive the per-device stream from the seed AND the name so two
        // devices with the same seed still differ.
        let name_salt: u64 = self
            .name
            .bytes()
            .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
        let mut rng = StdRng::seed_from_u64(self.seed ^ name_salt);

        let mut mib = MibTree::new();
        mib.set(oids::sys_descr(), MibValue::Str(self.kind.descr().into()));
        mib.set(oids::sys_name(), MibValue::Str(self.name.clone()));
        mib.set(oids::sys_uptime(), MibValue::TimeTicks(0));
        mib.set(
            oids::hr_storage_size(oids::STORAGE_RAM),
            MibValue::Gauge(self.ram_units),
        );
        mib.set(
            oids::hr_storage_size(oids::STORAGE_DISK),
            MibValue::Gauge(self.disk_units),
        );

        let mut dynamics: Vec<Dynamic> = Vec::new();
        for cpu in 1..=self.cpus {
            let start = rng.random_range(10.0..40.0);
            dynamics.push(Dynamic {
                oid: oids::hr_processor_load(cpu),
                role: MetricRole::CpuLoad(cpu),
                gen: Box::new(RandomWalk::new(start, 8.0, 0.0, 100.0)),
            });
        }
        for index in 1..=interfaces {
            let rate = self.kind.traffic_rate() * rng.random_range(0.5..1.5);
            dynamics.push(Dynamic {
                oid: oids::if_in_octets(index),
                role: MetricRole::IfInOctets(index),
                gen: Box::new(CounterGen::new(rate, 0.3)),
            });
            dynamics.push(Dynamic {
                oid: oids::if_out_octets(index),
                role: MetricRole::IfOutOctets(index),
                gen: Box::new(CounterGen::new(rate * 0.8, 0.3)),
            });
            mib.set(oids::if_oper_status(index), MibValue::Int(1));
        }
        let ram_start = self.ram_units as f64 * rng.random_range(0.3..0.6);
        dynamics.push(Dynamic {
            oid: oids::hr_storage_used(oids::STORAGE_RAM),
            role: MetricRole::StorageUsed(oids::STORAGE_RAM),
            gen: Box::new(RandomWalk::new(
                ram_start,
                self.ram_units as f64 * 0.02,
                0.0,
                self.ram_units as f64,
            )),
        });
        let disk_start = self.disk_units as f64 * rng.random_range(0.3..0.6);
        dynamics.push(Dynamic {
            oid: oids::hr_storage_used(oids::STORAGE_DISK),
            role: MetricRole::StorageUsed(oids::STORAGE_DISK),
            gen: Box::new(RandomWalk::new(
                disk_start,
                self.disk_units as f64 * 0.005,
                0.0,
                self.disk_units as f64,
            )),
        });
        dynamics.push(Dynamic {
            oid: oids::hr_system_processes(),
            role: MetricRole::ProcessCount,
            gen: Box::new(RandomWalk::new(
                rng.random_range(80.0..200.0),
                6.0,
                20.0,
                500.0,
            )),
        });

        let mut device = Device {
            name: self.name,
            kind: self.kind,
            site: self.site,
            mib,
            dynamics,
            rng,
            faults: Vec::new(),
            fault_ramps: Vec::new(),
            interfaces,
            disk_units: self.disk_units,
            ram_units: self.ram_units,
            now_ms: 0,
        };
        device.tick(0);
        device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(seed: u64) -> Device {
        Device::builder("srv", DeviceKind::Server)
            .seed(seed)
            .build()
    }

    #[test]
    fn build_populates_standard_objects() {
        let dev = server(1);
        assert_eq!(
            dev.mib().get(&oids::sys_name()).unwrap().as_str(),
            Some("srv")
        );
        assert!(dev.mib().get(&oids::hr_processor_load(1)).is_some());
        assert!(dev.mib().get(&oids::if_in_octets(1)).is_some());
        assert!(dev.mib().get(&oids::hr_system_processes()).is_some());
        assert_eq!(dev.storage_size(oids::STORAGE_DISK), Some(500_000));
    }

    #[test]
    fn kinds_set_interface_defaults() {
        let router = Device::builder("r", DeviceKind::Router).build();
        let switch = Device::builder("s", DeviceKind::Switch).build();
        assert_eq!(router.interface_count(), 4);
        assert_eq!(switch.interface_count(), 8);
        assert!(switch.mib().get(&oids::if_oper_status(8)).is_some());
    }

    #[test]
    fn tick_advances_uptime_and_counters() {
        let mut dev = server(2);
        let c0 = dev
            .mib()
            .get(&oids::if_in_octets(1))
            .unwrap()
            .as_f64()
            .unwrap();
        dev.tick(60_000);
        let c1 = dev
            .mib()
            .get(&oids::if_in_octets(1))
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(c1 > c0, "traffic counter must advance");
        assert_eq!(
            dev.mib().get(&oids::sys_uptime()),
            Some(&MibValue::TimeTicks(6_000))
        );
    }

    #[test]
    fn cpu_runaway_pins_load_high() {
        let mut dev = server(3);
        dev.inject(FaultKind::CpuRunaway);
        dev.tick(60_000);
        let load = dev
            .mib()
            .get(&oids::hr_processor_load(1))
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(load >= 95.0);
        dev.clear(FaultKind::CpuRunaway);
        assert!(dev.active_faults().is_empty());
    }

    #[test]
    fn link_down_flips_status_and_freezes_counter() {
        let mut dev = Device::builder("r", DeviceKind::Router).seed(4).build();
        dev.tick(60_000);
        dev.inject(FaultKind::LinkDown(2));
        dev.tick(120_000);
        assert_eq!(
            dev.mib().get(&oids::if_oper_status(2)),
            Some(&MibValue::Int(2))
        );
        let frozen = dev
            .mib()
            .get(&oids::if_in_octets(2))
            .unwrap()
            .as_f64()
            .unwrap();
        dev.tick(180_000);
        let still = dev
            .mib()
            .get(&oids::if_in_octets(2))
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(frozen, still, "downed link must not count traffic");
        // Other links keep working.
        assert_eq!(
            dev.mib().get(&oids::if_oper_status(1)),
            Some(&MibValue::Int(1))
        );
    }

    #[test]
    fn disk_filling_ramps_to_capacity() {
        let mut dev = server(5);
        dev.tick(0);
        dev.inject(FaultKind::DiskFilling);
        // 2%/min fill rate: after 100 minutes the disk must be full.
        dev.tick(100 * 60_000);
        let used = dev
            .mib()
            .get(&oids::hr_storage_used(oids::STORAGE_DISK))
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(used >= 499_000.0, "disk used = {used}");
    }

    #[test]
    fn memory_leak_grows_ram_use() {
        let mut dev = server(6);
        dev.tick(0);
        let before = dev
            .mib()
            .get(&oids::hr_storage_used(oids::STORAGE_RAM))
            .unwrap()
            .as_f64()
            .unwrap();
        dev.inject(FaultKind::MemoryLeak);
        dev.tick(30 * 60_000);
        let after = dev
            .mib()
            .get(&oids::hr_storage_used(oids::STORAGE_RAM))
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(after > before);
    }

    #[test]
    fn unreachable_fault_controls_reachability() {
        let mut dev = server(7);
        assert!(dev.is_reachable());
        dev.inject(FaultKind::Unreachable);
        assert!(!dev.is_reachable());
        dev.clear(FaultKind::Unreachable);
        assert!(dev.is_reachable());
    }

    #[test]
    fn double_injection_is_idempotent() {
        let mut dev = server(8);
        dev.inject(FaultKind::CpuRunaway);
        dev.inject(FaultKind::CpuRunaway);
        assert_eq!(dev.active_faults().len(), 1);
    }

    #[test]
    fn same_seed_same_behaviour_different_names_differ() {
        let run = |name: &str| {
            let mut d = Device::builder(name, DeviceKind::Server).seed(9).build();
            d.tick(60_000);
            d.mib()
                .get(&oids::hr_processor_load(1))
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(run("a"), run("a"));
        // Extremely unlikely to collide if the name salts the stream.
        assert_ne!(
            (run("a"), run("b"), run("c")),
            (run("b"), run("c"), run("a"))
        );
    }
}
