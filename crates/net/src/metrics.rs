//! Metric generators driving the simulated devices.
//!
//! Each dynamic MIB object is backed by a [`MetricGen`] that produces the
//! next sample as simulated time advances. Generators are deterministic
//! given a seed, so scenarios and benchmarks are reproducible.

use rand::rngs::StdRng;
use rand::RngExt;

/// A source of metric samples over simulated time.
///
/// `t_ms` is the absolute simulated time in milliseconds; implementations
/// may keep internal state (e.g. counters accumulate).
pub trait MetricGen: Send + std::fmt::Debug {
    /// Produces the value at simulated time `t_ms`.
    fn sample(&mut self, t_ms: u64, rng: &mut StdRng) -> f64;
}

/// A constant value.
///
/// # Examples
///
/// ```
/// use agentgrid_net::metrics::{Constant, MetricGen};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(Constant(7.0).sample(0, &mut rng), 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl MetricGen for Constant {
    fn sample(&mut self, _t_ms: u64, _rng: &mut StdRng) -> f64 {
        self.0
    }
}

/// A bounded random walk: each sample moves by at most `step` from the
/// previous one and is clamped to `[min, max]`.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    value: f64,
    step: f64,
    min: f64,
    max: f64,
}

impl RandomWalk {
    /// Creates a walk starting at `start`, moving at most `step` per
    /// sample, clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `step < 0`.
    pub fn new(start: f64, step: f64, min: f64, max: f64) -> Self {
        assert!(min <= max, "min must not exceed max");
        assert!(step >= 0.0, "step must be non-negative");
        RandomWalk {
            value: start.clamp(min, max),
            step,
            min,
            max,
        }
    }
}

impl MetricGen for RandomWalk {
    fn sample(&mut self, _t_ms: u64, rng: &mut StdRng) -> f64 {
        let delta = rng.random_range(-self.step..=self.step);
        self.value = (self.value + delta).clamp(self.min, self.max);
        self.value
    }
}

/// A daily sinusoidal pattern with noise — models business-hours load.
#[derive(Debug, Clone)]
pub struct Diurnal {
    /// Midpoint of the oscillation.
    pub base: f64,
    /// Peak deviation from the midpoint.
    pub amplitude: f64,
    /// Uniform noise added on top (± this value).
    pub noise: f64,
    /// Period of one "day" in simulated milliseconds.
    pub period_ms: u64,
}

impl MetricGen for Diurnal {
    fn sample(&mut self, t_ms: u64, rng: &mut StdRng) -> f64 {
        let phase = (t_ms % self.period_ms) as f64 / self.period_ms as f64;
        let wave = (phase * std::f64::consts::TAU).sin();
        let noise = if self.noise > 0.0 {
            rng.random_range(-self.noise..=self.noise)
        } else {
            0.0
        };
        (self.base + self.amplitude * wave + noise).max(0.0)
    }
}

/// A monotonically increasing counter: accumulates a per-second rate
/// (with jitter), like `ifInOctets`.
#[derive(Debug, Clone)]
pub struct CounterGen {
    total: f64,
    rate_per_sec: f64,
    jitter: f64,
    last_t_ms: Option<u64>,
}

impl CounterGen {
    /// Creates a counter accumulating `rate_per_sec` units per simulated
    /// second, with multiplicative jitter in `[1-jitter, 1+jitter]`.
    pub fn new(rate_per_sec: f64, jitter: f64) -> Self {
        CounterGen {
            total: 0.0,
            rate_per_sec,
            jitter: jitter.clamp(0.0, 1.0),
            last_t_ms: None,
        }
    }
}

impl MetricGen for CounterGen {
    fn sample(&mut self, t_ms: u64, rng: &mut StdRng) -> f64 {
        let elapsed_ms = match self.last_t_ms {
            Some(last) => t_ms.saturating_sub(last),
            None => 0,
        };
        self.last_t_ms = Some(t_ms);
        let factor = if self.jitter > 0.0 {
            rng.random_range(1.0 - self.jitter..=1.0 + self.jitter)
        } else {
            1.0
        };
        self.total += self.rate_per_sec * factor * (elapsed_ms as f64 / 1000.0);
        self.total
    }
}

/// A linear ramp, used by fault injection (disk filling, memory leak):
/// grows from `start` by `slope_per_sec` until `cap`.
#[derive(Debug, Clone)]
pub struct Ramp {
    start: f64,
    slope_per_sec: f64,
    cap: f64,
    t0_ms: Option<u64>,
}

impl Ramp {
    /// Creates a ramp. Growth is measured from the first sample's time.
    pub fn new(start: f64, slope_per_sec: f64, cap: f64) -> Self {
        Ramp {
            start,
            slope_per_sec,
            cap,
            t0_ms: None,
        }
    }

    /// Anchors the ramp's origin at an explicit simulated time instead of
    /// the first sample (used when a fault is injected *between* samples).
    pub fn with_origin(mut self, t0_ms: u64) -> Self {
        self.t0_ms = Some(t0_ms);
        self
    }
}

impl MetricGen for Ramp {
    fn sample(&mut self, t_ms: u64, _rng: &mut StdRng) -> f64 {
        let t0 = *self.t0_ms.get_or_insert(t_ms);
        let elapsed_sec = t_ms.saturating_sub(t0) as f64 / 1000.0;
        (self.start + self.slope_per_sec * elapsed_sec).min(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn constant_is_constant() {
        let mut g = Constant(3.5);
        let mut r = rng();
        assert_eq!(g.sample(0, &mut r), 3.5);
        assert_eq!(g.sample(1_000_000, &mut r), 3.5);
    }

    #[test]
    fn random_walk_stays_in_bounds() {
        let mut g = RandomWalk::new(50.0, 10.0, 0.0, 100.0);
        let mut r = rng();
        for t in 0..1000 {
            let v = g.sample(t * 1000, &mut r);
            assert!((0.0..=100.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn random_walk_moves_at_most_step() {
        let mut g = RandomWalk::new(50.0, 2.0, 0.0, 100.0);
        let mut r = rng();
        let mut prev = 50.0;
        for t in 0..100 {
            let v = g.sample(t, &mut r);
            assert!((v - prev).abs() <= 2.0 + 1e-9);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn random_walk_rejects_inverted_bounds() {
        RandomWalk::new(0.0, 1.0, 10.0, 0.0);
    }

    #[test]
    fn diurnal_oscillates_around_base() {
        let mut g = Diurnal {
            base: 50.0,
            amplitude: 20.0,
            noise: 0.0,
            period_ms: 1000,
        };
        let mut r = rng();
        let quarter = g.sample(250, &mut r); // sin(π/2) = 1 → peak
        let three_quarter = g.sample(750, &mut r); // sin(3π/2) = -1 → trough
        assert!((quarter - 70.0).abs() < 1e-6);
        assert!((three_quarter - 30.0).abs() < 1e-6);
    }

    #[test]
    fn diurnal_never_negative() {
        let mut g = Diurnal {
            base: 1.0,
            amplitude: 50.0,
            noise: 5.0,
            period_ms: 100,
        };
        let mut r = rng();
        for t in 0..200 {
            assert!(g.sample(t, &mut r) >= 0.0);
        }
    }

    #[test]
    fn counter_is_monotone_in_time() {
        let mut g = CounterGen::new(100.0, 0.3);
        let mut r = rng();
        let mut prev = g.sample(0, &mut r);
        for t in 1..50 {
            let v = g.sample(t * 1000, &mut r);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn counter_rate_is_approximately_honoured() {
        let mut g = CounterGen::new(100.0, 0.0);
        let mut r = rng();
        g.sample(0, &mut r);
        let v = g.sample(10_000, &mut r);
        assert!((v - 1000.0).abs() < 1e-6, "{v}");
    }

    #[test]
    fn ramp_grows_then_caps() {
        let mut g = Ramp::new(10.0, 5.0, 30.0);
        let mut r = rng();
        assert_eq!(g.sample(1_000, &mut r), 10.0); // t0 anchored here
        assert_eq!(g.sample(3_000, &mut r), 20.0);
        assert_eq!(g.sample(60_000, &mut r), 30.0); // capped
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let run = || {
            let mut g = RandomWalk::new(50.0, 5.0, 0.0, 100.0);
            let mut r = StdRng::seed_from_u64(7);
            (0..20).map(|t| g.sample(t, &mut r)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
