//! The SNMP-like management protocol served by simulated devices.
//!
//! This is the collector grid's primary *interface* (paper §3.1). The
//! protocol mirrors SNMPv2c semantics — `Get`, `GetNext`, `GetBulk`,
//! `Set` — over the in-process device model instead of UDP, so the same
//! collector code path (poll OIDs on a schedule, walk tables, handle
//! unreachable devices) is exercised without a real network stack.
//!
//! # Examples
//!
//! ```
//! use agentgrid_net::{snmp, Device, DeviceKind, oids};
//!
//! let mut dev = Device::builder("r1", DeviceKind::Router).seed(3).build();
//! dev.tick(60_000);
//! let rows = snmp::walk(&mut dev, &oids::if_table())?;
//! assert!(!rows.is_empty());
//! # Ok::<(), agentgrid_net::snmp::SnmpError>(())
//! ```

use std::fmt;

use crate::{oids, Device, MibValue, Oid};

/// A management request to one device.
#[derive(Debug, Clone, PartialEq)]
pub enum SnmpRequest {
    /// Read one object.
    Get(Oid),
    /// Read the lexicographically next object.
    GetNext(Oid),
    /// Read up to `max_repetitions` objects after `start`.
    GetBulk {
        /// Exclusive lower bound of the read.
        start: Oid,
        /// Maximum number of objects to return.
        max_repetitions: usize,
    },
    /// Write one object (only writable objects accept this).
    Set(Oid, MibValue),
}

/// A successful reply.
#[derive(Debug, Clone, PartialEq)]
pub enum SnmpResponse {
    /// Reply to `Get`/`GetNext`: the object's OID and value.
    Value(Oid, MibValue),
    /// Reply to `GetBulk`: consecutive objects in order.
    Rows(Vec<(Oid, MibValue)>),
    /// Reply to `Set`.
    Done,
}

/// A protocol error.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnmpError {
    /// The device is not answering (fault-injected or powered off).
    Unreachable {
        /// The unresponsive device.
        device: String,
    },
    /// No object exists at (or, for `GetNext`, after) the OID.
    NoSuchObject(Oid),
    /// The object exists but rejects writes.
    NotWritable(Oid),
}

impl fmt::Display for SnmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnmpError::Unreachable { device } => write!(f, "device `{device}` unreachable"),
            SnmpError::NoSuchObject(oid) => write!(f, "no such object `{oid}`"),
            SnmpError::NotWritable(oid) => write!(f, "object `{oid}` is not writable"),
        }
    }
}

impl std::error::Error for SnmpError {}

/// Whether an object accepts `Set` (only `sysName` in this MIB subset,
/// mirroring how little of MIB-2 is actually writable).
fn is_writable(oid: &Oid) -> bool {
    *oid == oids::sys_name()
}

/// Serves one request against a device, honouring reachability.
///
/// # Errors
///
/// Returns [`SnmpError::Unreachable`] when the device has the
/// `Unreachable` fault active, [`SnmpError::NoSuchObject`] for reads that
/// miss, and [`SnmpError::NotWritable`] for writes to read-only objects.
pub fn serve(device: &mut Device, request: &SnmpRequest) -> Result<SnmpResponse, SnmpError> {
    if !device.is_reachable() {
        return Err(SnmpError::Unreachable {
            device: device.name().to_owned(),
        });
    }
    match request {
        SnmpRequest::Get(oid) => device
            .mib()
            .get(oid)
            .map(|v| SnmpResponse::Value(oid.clone(), v.clone()))
            .ok_or_else(|| SnmpError::NoSuchObject(oid.clone())),
        SnmpRequest::GetNext(oid) => device
            .mib()
            .get_next(oid)
            .map(|(o, v)| SnmpResponse::Value(o.clone(), v.clone()))
            .ok_or_else(|| SnmpError::NoSuchObject(oid.clone())),
        SnmpRequest::GetBulk {
            start,
            max_repetitions,
        } => {
            let mut rows = Vec::new();
            let mut cursor = start.clone();
            for _ in 0..*max_repetitions {
                match device.mib().get_next(&cursor) {
                    Some((oid, value)) => {
                        rows.push((oid.clone(), value.clone()));
                        cursor = oid.clone();
                    }
                    None => break,
                }
            }
            Ok(SnmpResponse::Rows(rows))
        }
        SnmpRequest::Set(oid, value) => {
            if device.mib().get(oid).is_none() {
                return Err(SnmpError::NoSuchObject(oid.clone()));
            }
            if !is_writable(oid) {
                return Err(SnmpError::NotWritable(oid.clone()));
            }
            device.mib_mut().set(oid.clone(), value.clone());
            Ok(SnmpResponse::Done)
        }
    }
}

/// Client helper: reads one object.
///
/// # Errors
///
/// Propagates [`SnmpError`] from [`serve`].
pub fn get(device: &mut Device, oid: &Oid) -> Result<MibValue, SnmpError> {
    match serve(device, &SnmpRequest::Get(oid.clone()))? {
        SnmpResponse::Value(_, value) => Ok(value),
        other => unreachable!("Get always answers Value, got {other:?}"),
    }
}

/// Client helper: walks an entire subtree with repeated `GetNext` —
/// exactly what an SNMP collector does with a table.
///
/// # Errors
///
/// Propagates [`SnmpError::Unreachable`]; an empty subtree yields an
/// empty vector, not an error.
pub fn walk(device: &mut Device, prefix: &Oid) -> Result<Vec<(Oid, MibValue)>, SnmpError> {
    let mut rows = Vec::new();
    let mut cursor = prefix.clone();
    loop {
        match serve(device, &SnmpRequest::GetNext(cursor.clone())) {
            Ok(SnmpResponse::Value(oid, value)) => {
                if !oid.starts_with(prefix) {
                    break;
                }
                cursor = oid.clone();
                rows.push((oid, value));
            }
            Ok(other) => unreachable!("GetNext always answers Value, got {other:?}"),
            Err(SnmpError::NoSuchObject(_)) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceKind, FaultKind};

    fn device() -> Device {
        let mut d = Device::builder("r1", DeviceKind::Router).seed(11).build();
        d.tick(60_000);
        d
    }

    #[test]
    fn get_reads_exact_object() {
        let mut dev = device();
        let value = get(&mut dev, &oids::sys_name()).unwrap();
        assert_eq!(value.as_str(), Some("r1"));
    }

    #[test]
    fn get_missing_is_no_such_object() {
        let mut dev = device();
        let missing = Oid::from([9, 9, 9]);
        assert_eq!(
            get(&mut dev, &missing),
            Err(SnmpError::NoSuchObject(missing))
        );
    }

    #[test]
    fn get_next_traverses_in_order() {
        let mut dev = device();
        let SnmpResponse::Value(first, _) =
            serve(&mut dev, &SnmpRequest::GetNext(Oid::from([1]))).unwrap()
        else {
            panic!("expected value");
        };
        let SnmpResponse::Value(second, _) =
            serve(&mut dev, &SnmpRequest::GetNext(first.clone())).unwrap()
        else {
            panic!("expected value");
        };
        assert!(first < second);
    }

    #[test]
    fn get_bulk_returns_up_to_n_rows() {
        let mut dev = device();
        let SnmpResponse::Rows(rows) = serve(
            &mut dev,
            &SnmpRequest::GetBulk {
                start: Oid::from([1]),
                max_repetitions: 5,
            },
        )
        .unwrap() else {
            panic!("expected rows");
        };
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn walk_covers_the_interface_table_exactly() {
        let mut dev = device();
        let rows = walk(&mut dev, &oids::if_table()).unwrap();
        // 4 interfaces × 3 columns (operStatus, inOctets, outOctets).
        assert_eq!(rows.len(), 12);
        assert!(rows
            .iter()
            .all(|(oid, _)| oid.starts_with(&oids::if_table())));
    }

    #[test]
    fn walk_empty_subtree_is_empty() {
        let mut dev = device();
        assert!(walk(&mut dev, &Oid::from([2])).unwrap().is_empty());
    }

    #[test]
    fn set_writes_writable_objects_only() {
        let mut dev = device();
        let ok = serve(
            &mut dev,
            &SnmpRequest::Set(oids::sys_name(), MibValue::Str("renamed".into())),
        );
        assert_eq!(ok, Ok(SnmpResponse::Done));
        assert_eq!(
            get(&mut dev, &oids::sys_name()).unwrap().as_str(),
            Some("renamed")
        );

        let err = serve(
            &mut dev,
            &SnmpRequest::Set(oids::sys_uptime(), MibValue::TimeTicks(0)),
        );
        assert_eq!(err, Err(SnmpError::NotWritable(oids::sys_uptime())));

        let missing = Oid::from([9]);
        let err = serve(
            &mut dev,
            &SnmpRequest::Set(missing.clone(), MibValue::Int(0)),
        );
        assert_eq!(err, Err(SnmpError::NoSuchObject(missing)));
    }

    #[test]
    fn unreachable_device_rejects_everything() {
        let mut dev = device();
        dev.inject(FaultKind::Unreachable);
        for request in [
            SnmpRequest::Get(oids::sys_name()),
            SnmpRequest::GetNext(Oid::from([1])),
            SnmpRequest::GetBulk {
                start: Oid::from([1]),
                max_repetitions: 3,
            },
            SnmpRequest::Set(oids::sys_name(), MibValue::Str("x".into())),
        ] {
            assert!(matches!(
                serve(&mut dev, &request),
                Err(SnmpError::Unreachable { .. })
            ));
        }
        assert!(matches!(
            walk(&mut dev, &oids::if_table()),
            Err(SnmpError::Unreachable { .. })
        ));
    }
}
