//! Simulated managed network for `agentgrid`.
//!
//! The paper's collector grid pulls data from "network devices ... through
//! management protocols" (§3.1). Real devices and SNMP stacks are not
//! available in this reproduction, so this crate provides the closest
//! synthetic equivalent that exercises the same code path:
//!
//! * [`Oid`]s and a [`MibTree`] with MIB-2-style object identifiers and
//!   `Get`/`GetNext`/`GetBulk`/`Set` semantics ([`snmp`]);
//! * [`Device`]s (routers, switches, servers) whose metrics evolve over
//!   simulated time through pluggable [`metrics`] generators;
//! * [`fault`] injection (CPU runaway, link down, disk filling, memory
//!   leak, unreachable device) so analysis rules have real anomalies to
//!   detect;
//! * a `show`-style [`cli`] command interface, the paper's example of a
//!   collector that uses "a command line utility" instead of SNMP;
//! * a [`Network`] topology grouping devices into sites with link
//!   latencies.
//!
//! # Examples
//!
//! ```
//! use agentgrid_net::{Device, DeviceKind, Oid, oids};
//!
//! let mut dev = Device::builder("router-1", DeviceKind::Router)
//!     .site("site-1")
//!     .interfaces(2)
//!     .seed(7)
//!     .build();
//! dev.tick(60_000); // advance one minute of simulated time
//! let load = dev.mib().get(&oids::hr_processor_load(1)).unwrap();
//! assert!(load.as_f64().unwrap() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
mod device;
pub mod fault;
pub mod metrics;
mod mib;
mod oid;
pub mod oids;
pub mod snmp;
mod topology;

pub use device::{Device, DeviceBuilder, DeviceKind};
pub use fault::{FaultInjector, FaultKind, ScheduledFault};
pub use mib::{MibTree, MibValue};
pub use oid::{Oid, ParseOidError};
pub use topology::{Link, Network, Site};
