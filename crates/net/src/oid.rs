use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An SNMP object identifier: a sequence of numeric sub-identifiers.
///
/// Ordering is lexicographic over the sub-identifier sequence, which is
/// exactly the order `GetNext` traverses a MIB in.
///
/// # Examples
///
/// ```
/// use agentgrid_net::Oid;
///
/// let sys_descr: Oid = "1.3.6.1.2.1.1.1.0".parse()?;
/// assert_eq!(sys_descr.to_string(), "1.3.6.1.2.1.1.1.0");
/// assert!(sys_descr.starts_with(&"1.3.6.1.2.1.1".parse()?));
/// # Ok::<(), agentgrid_net::ParseOidError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Oid(Vec<u32>);

impl Oid {
    /// Creates an OID from sub-identifiers.
    pub fn new(parts: impl Into<Vec<u32>>) -> Self {
        Oid(parts.into())
    }

    /// The sub-identifiers.
    pub fn parts(&self) -> &[u32] {
        &self.0
    }

    /// Number of sub-identifiers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the OID has no sub-identifiers (the MIB root).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns a new OID with `index` appended — how table columns get
    /// their row instances.
    pub fn child(&self, index: u32) -> Oid {
        let mut parts = self.0.clone();
        parts.push(index);
        Oid(parts)
    }

    /// Returns a new OID with all of `suffix` appended.
    pub fn extend(&self, suffix: impl IntoIterator<Item = u32>) -> Oid {
        let mut parts = self.0.clone();
        parts.extend(suffix);
        Oid(parts)
    }

    /// Whether `prefix` is a (non-strict) prefix of this OID.
    pub fn starts_with(&self, prefix: &Oid) -> bool {
        self.0.starts_with(&prefix.0)
    }

    /// The last sub-identifier, if any (typically a table row index).
    pub fn last(&self) -> Option<u32> {
        self.0.last().copied()
    }
}

impl From<&[u32]> for Oid {
    fn from(parts: &[u32]) -> Self {
        Oid(parts.to_vec())
    }
}

impl<const N: usize> From<[u32; N]> for Oid {
    fn from(parts: [u32; N]) -> Self {
        Oid(parts.to_vec())
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, part) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{part}")?;
        }
        Ok(())
    }
}

/// Error returned when parsing an [`Oid`] from dotted-decimal text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOidError {
    input: String,
}

impl fmt::Display for ParseOidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid oid `{}`", self.input)
    }
}

impl std::error::Error for ParseOidError {}

impl FromStr for Oid {
    type Err = ParseOidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseOidError {
                input: s.to_owned(),
            });
        }
        s.split('.')
            .map(|part| part.parse::<u32>())
            .collect::<Result<Vec<_>, _>>()
            .map(Oid)
            .map_err(|_| ParseOidError {
                input: s.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let oid: Oid = "1.3.6.1.2.1".parse().unwrap();
        assert_eq!(oid.parts(), &[1, 3, 6, 1, 2, 1]);
        assert_eq!(oid.to_string(), "1.3.6.1.2.1");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "1..2", "a.b", "1.2.", ".1.2", "1.-2"] {
            assert!(bad.parse::<Oid>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a: Oid = "1.3.6".parse().unwrap();
        let b: Oid = "1.3.6.1".parse().unwrap();
        let c: Oid = "1.3.7".parse().unwrap();
        assert!(a < b, "prefix sorts before extension");
        assert!(b < c, "sibling subtree sorts after");
    }

    #[test]
    fn child_and_extend() {
        let base: Oid = "1.2".parse().unwrap();
        assert_eq!(base.child(5).to_string(), "1.2.5");
        assert_eq!(base.extend([3, 4]).to_string(), "1.2.3.4");
        assert_eq!(base.child(5).last(), Some(5));
    }

    #[test]
    fn starts_with_is_prefix_relation() {
        let base: Oid = "1.2.3".parse().unwrap();
        assert!(base.starts_with(&"1.2".parse().unwrap()));
        assert!(base.starts_with(&base));
        assert!(!base.starts_with(&"1.2.4".parse().unwrap()));
        assert!(!"1.2".parse::<Oid>().unwrap().starts_with(&base));
    }
}
