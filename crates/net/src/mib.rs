use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Oid;

/// A value stored at a MIB leaf.
///
/// The variants mirror the SMI base types collectors actually see:
/// integers, monotonically increasing counters, gauges and octet strings.
///
/// # Examples
///
/// ```
/// use agentgrid_net::MibValue;
/// assert_eq!(MibValue::Gauge(42).as_f64(), Some(42.0));
/// assert_eq!(MibValue::Str("up".into()).as_f64(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MibValue {
    /// A signed integer (e.g. `ifOperStatus`).
    Int(i64),
    /// A monotonically increasing counter (e.g. `ifInOctets`).
    Counter(u64),
    /// A gauge that can rise and fall (e.g. `hrProcessorLoad`).
    Gauge(u64),
    /// Hundredths of a second since the device booted.
    TimeTicks(u64),
    /// An octet string (e.g. `sysDescr`).
    Str(String),
}

impl MibValue {
    /// Numeric view of the value, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MibValue::Int(x) => Some(*x as f64),
            MibValue::Counter(x) | MibValue::Gauge(x) | MibValue::TimeTicks(x) => Some(*x as f64),
            MibValue::Str(_) => None,
        }
    }

    /// String view of the value, if it is an octet string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            MibValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for MibValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MibValue::Int(x) => write!(f, "INTEGER: {x}"),
            MibValue::Counter(x) => write!(f, "Counter: {x}"),
            MibValue::Gauge(x) => write!(f, "Gauge: {x}"),
            MibValue::TimeTicks(x) => write!(f, "TimeTicks: {x}"),
            MibValue::Str(s) => write!(f, "STRING: {s}"),
        }
    }
}

/// An ordered tree of MIB objects, keyed by [`Oid`].
///
/// `BTreeMap` ordering gives `get_next` the exact lexicographic traversal
/// SNMP mandates.
///
/// # Examples
///
/// ```
/// use agentgrid_net::{MibTree, MibValue, Oid};
///
/// let mut mib = MibTree::new();
/// mib.set(Oid::from([1, 1]), MibValue::Int(1));
/// mib.set(Oid::from([1, 2]), MibValue::Int(2));
/// let (next, v) = mib.get_next(&Oid::from([1, 1])).unwrap();
/// assert_eq!(next, &Oid::from([1, 2]));
/// assert_eq!(v, &MibValue::Int(2));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MibTree {
    objects: BTreeMap<Oid, MibValue>,
}

impl MibTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        MibTree::default()
    }

    /// Reads the value at exactly `oid`.
    pub fn get(&self, oid: &Oid) -> Option<&MibValue> {
        self.objects.get(oid)
    }

    /// Writes (creates or replaces) the value at `oid`.
    pub fn set(&mut self, oid: Oid, value: MibValue) {
        self.objects.insert(oid, value);
    }

    /// Removes the value at `oid`, returning it if present.
    pub fn remove(&mut self, oid: &Oid) -> Option<MibValue> {
        self.objects.remove(oid)
    }

    /// The first object *strictly after* `oid` in lexicographic order —
    /// SNMP `GetNext`.
    pub fn get_next(&self, oid: &Oid) -> Option<(&Oid, &MibValue)> {
        use std::ops::Bound;
        self.objects
            .range((Bound::Excluded(oid.clone()), Bound::Unbounded))
            .next()
    }

    /// All objects under `prefix` in order — one SNMP walk.
    pub fn walk<'a>(
        &'a self,
        prefix: &'a Oid,
    ) -> impl Iterator<Item = (&'a Oid, &'a MibValue)> + 'a {
        self.objects
            .range(prefix.clone()..)
            .take_while(move |(oid, _)| oid.starts_with(prefix))
    }

    /// Iterates over every object in order.
    pub fn iter(&self) -> impl Iterator<Item = (&Oid, &MibValue)> {
        self.objects.iter()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

impl Extend<(Oid, MibValue)> for MibTree {
    fn extend<T: IntoIterator<Item = (Oid, MibValue)>>(&mut self, iter: T) {
        self.objects.extend(iter);
    }
}

impl FromIterator<(Oid, MibValue)> for MibTree {
    fn from_iter<T: IntoIterator<Item = (Oid, MibValue)>>(iter: T) -> Self {
        MibTree {
            objects: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> MibTree {
        [
            (Oid::from([1, 1, 0]), MibValue::Str("descr".into())),
            (Oid::from([1, 2, 1, 1]), MibValue::Int(1)),
            (Oid::from([1, 2, 1, 2]), MibValue::Int(2)),
            (Oid::from([1, 3, 0]), MibValue::Counter(99)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn get_exact() {
        let mib = tree();
        assert_eq!(mib.get(&Oid::from([1, 3, 0])), Some(&MibValue::Counter(99)));
        assert_eq!(mib.get(&Oid::from([9])), None);
    }

    #[test]
    fn get_next_is_strictly_after() {
        let mib = tree();
        let (oid, _) = mib.get_next(&Oid::from([1, 1, 0])).unwrap();
        assert_eq!(oid, &Oid::from([1, 2, 1, 1]));
        // From a non-existent OID, the next existing one is returned.
        let (oid, _) = mib.get_next(&Oid::from([1, 2])).unwrap();
        assert_eq!(oid, &Oid::from([1, 2, 1, 1]));
        // Past the end there is nothing.
        assert!(mib.get_next(&Oid::from([1, 3, 0])).is_none());
    }

    #[test]
    fn walk_covers_exactly_the_subtree() {
        let mib = tree();
        let rows: Vec<_> = mib
            .walk(&Oid::from([1, 2]))
            .map(|(o, _)| o.clone())
            .collect();
        assert_eq!(rows, vec![Oid::from([1, 2, 1, 1]), Oid::from([1, 2, 1, 2])]);
        assert_eq!(mib.walk(&Oid::from([1])).count(), 4);
        assert_eq!(mib.walk(&Oid::from([2])).count(), 0);
    }

    #[test]
    fn set_replaces_and_remove_deletes() {
        let mut mib = tree();
        mib.set(Oid::from([1, 3, 0]), MibValue::Counter(100));
        assert_eq!(
            mib.get(&Oid::from([1, 3, 0])),
            Some(&MibValue::Counter(100))
        );
        assert_eq!(
            mib.remove(&Oid::from([1, 3, 0])),
            Some(MibValue::Counter(100))
        );
        assert_eq!(mib.len(), 3);
    }

    #[test]
    fn value_display_formats() {
        assert_eq!(MibValue::Int(-1).to_string(), "INTEGER: -1");
        assert_eq!(MibValue::Str("x".into()).to_string(), "STRING: x");
        assert_eq!(MibValue::Gauge(5).to_string(), "Gauge: 5");
    }
}
