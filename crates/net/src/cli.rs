//! A `show`-style command-line interface on the simulated devices.
//!
//! The paper notes a collector agent may use "a command line utility"
//! instead of SNMP (§3.1). This module is that second interface: textual
//! commands against a device producing textual reports that the collector
//! must parse — a deliberately different code path from the typed SNMP
//! one, so the "heterogeneous formats → common representation" step in
//! the collector grid is real.
//!
//! # Examples
//!
//! ```
//! use agentgrid_net::{cli, Device, DeviceKind};
//!
//! let mut dev = Device::builder("srv-1", DeviceKind::Server).seed(5).build();
//! dev.tick(60_000);
//! let report = cli::execute(&dev, "show cpu")?;
//! let values = cli::parse_report(&report);
//! assert!(values.iter().any(|(key, _)| key == "cpu.load.1"));
//! # Ok::<(), cli::CliError>(())
//! ```

use std::fmt;

use crate::{oids, Device, MibValue};

/// Error returned by [`execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CliError {
    /// The command is not recognized.
    UnknownCommand(String),
    /// The device is not answering.
    Unreachable(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand(cmd) => write!(f, "unknown command `{cmd}`"),
            CliError::Unreachable(device) => write!(f, "device `{device}` unreachable"),
        }
    }
}

impl std::error::Error for CliError {}

/// Executes a `show` command against a device, returning a textual
/// report.
///
/// Supported commands: `show system`, `show cpu`, `show interfaces`,
/// `show storage`, `show processes`.
///
/// # Errors
///
/// Returns [`CliError::Unreachable`] if the device is down and
/// [`CliError::UnknownCommand`] for anything it does not understand.
pub fn execute(device: &Device, command: &str) -> Result<String, CliError> {
    if !device.is_reachable() {
        return Err(CliError::Unreachable(device.name().to_owned()));
    }
    let normalized = command.trim().to_ascii_lowercase();
    match normalized.as_str() {
        "show system" => Ok(show_system(device)),
        "show cpu" => Ok(show_cpu(device)),
        "show interfaces" => Ok(show_interfaces(device)),
        "show storage" => Ok(show_storage(device)),
        "show processes" => Ok(show_processes(device)),
        _ => Err(CliError::UnknownCommand(command.trim().to_owned())),
    }
}

/// The commands [`execute`] understands, for collectors that iterate
/// over all of them.
pub const COMMANDS: [&str; 5] = [
    "show system",
    "show cpu",
    "show interfaces",
    "show storage",
    "show processes",
];

fn gauge(device: &Device, oid: &crate::Oid) -> f64 {
    device
        .mib()
        .get(oid)
        .and_then(MibValue::as_f64)
        .unwrap_or(0.0)
}

fn show_system(device: &Device) -> String {
    let descr = device
        .mib()
        .get(&oids::sys_descr())
        .and_then(MibValue::as_str)
        .unwrap_or("?");
    let uptime = gauge(device, &oids::sys_uptime());
    format!(
        "! {name} system report\nsystem.descr = {descr}\nsystem.uptime-ticks = {uptime}\n",
        name = device.name(),
    )
}

fn show_cpu(device: &Device) -> String {
    let mut out = format!("! {} cpu report\n", device.name());
    let mut cpu = 1;
    loop {
        let oid = oids::hr_processor_load(cpu);
        match device.mib().get(&oid) {
            Some(value) => {
                let load = value.as_f64().unwrap_or(0.0);
                out.push_str(&format!("cpu.load.{cpu} = {load}\n"));
                cpu += 1;
            }
            None => break,
        }
    }
    out
}

fn show_interfaces(device: &Device) -> String {
    let mut out = format!("! {} interface report\n", device.name());
    for index in 1..=device.interface_count() {
        let status = gauge(device, &oids::if_oper_status(index));
        let rx = gauge(device, &oids::if_in_octets(index));
        let tx = gauge(device, &oids::if_out_octets(index));
        out.push_str(&format!("if.{index}.oper-status = {status}\n"));
        out.push_str(&format!("if.{index}.in-octets = {rx}\n"));
        out.push_str(&format!("if.{index}.out-octets = {tx}\n"));
    }
    out
}

fn show_storage(device: &Device) -> String {
    let mut out = format!("! {} storage report\n", device.name());
    for (index, label) in [(oids::STORAGE_RAM, "ram"), (oids::STORAGE_DISK, "disk")] {
        let size = gauge(device, &oids::hr_storage_size(index));
        let used = gauge(device, &oids::hr_storage_used(index));
        let pct = if size > 0.0 { used / size * 100.0 } else { 0.0 };
        out.push_str(&format!("storage.{label}.size = {size}\n"));
        out.push_str(&format!("storage.{label}.used = {used}\n"));
        out.push_str(&format!("storage.{label}.used-pct = {pct:.2}\n"));
    }
    out
}

fn show_processes(device: &Device) -> String {
    let count = gauge(device, &oids::hr_system_processes());
    format!(
        "! {name} process report\nprocesses.count = {count}\n",
        name = device.name(),
    )
}

/// Parses a CLI report back into `(key, value)` pairs.
///
/// Comment lines (starting with `!`) and non-numeric values are skipped —
/// the collector only forwards numeric observations.
pub fn parse_report(report: &str) -> Vec<(String, f64)> {
    report
        .lines()
        .filter(|line| !line.trim_start().starts_with('!'))
        .filter_map(|line| {
            let (key, value) = line.split_once('=')?;
            let value: f64 = value.trim().parse().ok()?;
            Some((key.trim().to_owned(), value))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceKind, FaultKind};

    fn device() -> Device {
        let mut d = Device::builder("srv", DeviceKind::Server)
            .cpus(2)
            .seed(13)
            .build();
        d.tick(60_000);
        d
    }

    #[test]
    fn show_cpu_lists_every_cpu() {
        let report = execute(&device(), "show cpu").unwrap();
        let values = parse_report(&report);
        assert_eq!(values.len(), 2);
        assert_eq!(values[0].0, "cpu.load.1");
        assert_eq!(values[1].0, "cpu.load.2");
    }

    #[test]
    fn show_interfaces_reports_three_keys_per_interface() {
        let dev = device();
        let values = parse_report(&execute(&dev, "show interfaces").unwrap());
        assert_eq!(values.len(), 3 * dev.interface_count() as usize);
    }

    #[test]
    fn show_storage_reports_percentages() {
        let values = parse_report(&execute(&device(), "show storage").unwrap());
        let pct = values
            .iter()
            .find(|(k, _)| k == "storage.disk.used-pct")
            .unwrap()
            .1;
        assert!((0.0..=100.0).contains(&pct));
    }

    #[test]
    fn show_processes_reports_count() {
        let values = parse_report(&execute(&device(), "show processes").unwrap());
        assert_eq!(values.len(), 1);
        assert!(values[0].1 >= 20.0);
    }

    #[test]
    fn commands_are_case_and_space_insensitive() {
        let dev = device();
        assert!(execute(&dev, "  SHOW CPU  ").is_ok());
    }

    #[test]
    fn unknown_command_errors() {
        assert_eq!(
            execute(&device(), "reload"),
            Err(CliError::UnknownCommand("reload".into()))
        );
    }

    #[test]
    fn unreachable_device_errors() {
        let mut dev = device();
        dev.inject(FaultKind::Unreachable);
        assert_eq!(
            execute(&dev, "show cpu"),
            Err(CliError::Unreachable("srv".into()))
        );
    }

    #[test]
    fn parse_report_skips_comments_and_garbage() {
        let parsed = parse_report("! comment\nkey = 1.5\nbad line\ntext = hello\n");
        assert_eq!(parsed, vec![("key".to_owned(), 1.5)]);
    }

    #[test]
    fn all_advertised_commands_work() {
        let dev = device();
        for cmd in COMMANDS {
            assert!(execute(&dev, cmd).is_ok(), "{cmd}");
        }
    }
}
