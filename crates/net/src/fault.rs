//! Fault injection for the simulated network.
//!
//! The analysis rules of the processor grid exist to find problems; this
//! module plants them. Faults can be injected directly on a
//! [`Device`](crate::Device) or scheduled over simulated time with a
//! [`FaultInjector`] driving a whole [`Network`].

use std::fmt;

use crate::Network;

/// A fault a device can suffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// CPU pinned at 95–100 %.
    CpuRunaway,
    /// The given interface goes operationally down.
    LinkDown(u32),
    /// Disk usage ramps toward capacity (~2 %/min).
    DiskFilling,
    /// RAM usage ramps toward capacity (~5 %/min).
    MemoryLeak,
    /// The device stops answering management requests.
    Unreachable,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::CpuRunaway => f.write_str("cpu-runaway"),
            FaultKind::LinkDown(index) => write!(f, "link-down({index})"),
            FaultKind::DiskFilling => f.write_str("disk-filling"),
            FaultKind::MemoryLeak => f.write_str("memory-leak"),
            FaultKind::Unreachable => f.write_str("unreachable"),
        }
    }
}

/// A fault scheduled on a device for a window of simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Target device name.
    pub device: String,
    /// The fault to apply.
    pub fault: FaultKind,
    /// When the fault starts (ms).
    pub start_ms: u64,
    /// When it clears; `None` means it persists forever.
    pub end_ms: Option<u64>,
}

impl ScheduledFault {
    /// Creates a persistent fault starting at `start_ms`.
    pub fn from(device: impl Into<String>, fault: FaultKind, start_ms: u64) -> Self {
        ScheduledFault {
            device: device.into(),
            fault,
            start_ms,
            end_ms: None,
        }
    }

    /// Restricts the fault to end at `end_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `end_ms <= start_ms`.
    pub fn until(mut self, end_ms: u64) -> Self {
        assert!(end_ms > self.start_ms, "fault must end after it starts");
        self.end_ms = Some(end_ms);
        self
    }

    /// Whether the fault should be active at time `t_ms`.
    pub fn active_at(&self, t_ms: u64) -> bool {
        t_ms >= self.start_ms && self.end_ms.is_none_or(|end| t_ms < end)
    }
}

/// Applies a schedule of faults to a [`Network`] as time advances.
///
/// # Examples
///
/// ```
/// use agentgrid_net::{Device, DeviceKind, FaultInjector, FaultKind, Network, ScheduledFault};
///
/// let mut net = Network::new();
/// net.add_device(Device::builder("r1", DeviceKind::Router).site("s1").build());
/// let mut injector = FaultInjector::new([
///     ScheduledFault::from("r1", FaultKind::CpuRunaway, 60_000).until(120_000),
/// ]);
///
/// injector.apply(&mut net, 60_000);
/// assert_eq!(net.device("r1").unwrap().active_faults().len(), 1);
/// injector.apply(&mut net, 120_000);
/// assert!(net.device("r1").unwrap().active_faults().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    schedule: Vec<ScheduledFault>,
}

impl FaultInjector {
    /// Creates an injector from a schedule.
    pub fn new(schedule: impl IntoIterator<Item = ScheduledFault>) -> Self {
        FaultInjector {
            schedule: schedule.into_iter().collect(),
        }
    }

    /// Adds a fault to the schedule.
    pub fn push(&mut self, fault: ScheduledFault) {
        self.schedule.push(fault);
    }

    /// The schedule.
    pub fn schedule(&self) -> &[ScheduledFault] {
        &self.schedule
    }

    /// Injects/clears faults on `network` so each device's active set
    /// matches the schedule at time `t_ms`. Unknown device names are
    /// ignored (they may belong to a different site's network).
    pub fn apply(&mut self, network: &mut Network, t_ms: u64) {
        for entry in &self.schedule {
            let Some(device) = network.device_mut(&entry.device) else {
                continue;
            };
            let should_be_active = entry.active_at(t_ms);
            let is_active = device.active_faults().contains(&entry.fault);
            if should_be_active && !is_active {
                device.inject(entry.fault);
            } else if !should_be_active && is_active {
                device.clear(entry.fault);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, DeviceKind};

    #[test]
    fn active_window_is_half_open() {
        let f = ScheduledFault::from("d", FaultKind::MemoryLeak, 100).until(200);
        assert!(!f.active_at(99));
        assert!(f.active_at(100));
        assert!(f.active_at(199));
        assert!(!f.active_at(200));
    }

    #[test]
    fn persistent_fault_never_ends() {
        let f = ScheduledFault::from("d", FaultKind::DiskFilling, 5);
        assert!(f.active_at(u64::MAX));
        assert!(!f.active_at(0));
    }

    #[test]
    #[should_panic(expected = "fault must end after it starts")]
    fn until_rejects_inverted_window() {
        let _ = ScheduledFault::from("d", FaultKind::CpuRunaway, 100).until(100);
    }

    #[test]
    fn injector_applies_and_clears() {
        let mut net = Network::new();
        net.add_device(Device::builder("a", DeviceKind::Server).site("s").build());
        net.add_device(Device::builder("b", DeviceKind::Server).site("s").build());
        let mut injector = FaultInjector::new([
            ScheduledFault::from("a", FaultKind::CpuRunaway, 10).until(20),
            ScheduledFault::from("b", FaultKind::Unreachable, 15),
        ]);

        injector.apply(&mut net, 0);
        assert!(net.device("a").unwrap().active_faults().is_empty());

        injector.apply(&mut net, 12);
        assert_eq!(
            net.device("a").unwrap().active_faults(),
            [FaultKind::CpuRunaway]
        );
        assert!(net.device("b").unwrap().is_reachable());

        injector.apply(&mut net, 17);
        assert!(!net.device("b").unwrap().is_reachable());

        injector.apply(&mut net, 25);
        assert!(net.device("a").unwrap().active_faults().is_empty());
        assert!(
            !net.device("b").unwrap().is_reachable(),
            "persistent fault stays"
        );
    }

    #[test]
    fn injector_ignores_unknown_devices() {
        let mut net = Network::new();
        let mut injector =
            FaultInjector::new([ScheduledFault::from("ghost", FaultKind::CpuRunaway, 0)]);
        injector.apply(&mut net, 10); // must not panic
    }
}
