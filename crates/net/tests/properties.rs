//! Property-based tests for the simulated network.

use agentgrid_net::{snmp, Device, DeviceKind, MibTree, MibValue, Oid};
use proptest::prelude::*;

fn oid_strategy() -> impl Strategy<Value = Oid> {
    prop::collection::vec(0u32..20, 1..6).prop_map(Oid::new)
}

proptest! {
    /// OID display/parse round-trips.
    #[test]
    fn oid_round_trips(oid in oid_strategy()) {
        let parsed: Oid = oid.to_string().parse().unwrap();
        prop_assert_eq!(parsed, oid);
    }

    /// `get_next` starting before every OID visits each object exactly
    /// once, in strictly ascending order — the SNMP walk invariant.
    #[test]
    fn get_next_chain_enumerates_in_order(
        oids in prop::collection::btree_set(oid_strategy(), 1..40),
    ) {
        let mib: MibTree = oids
            .iter()
            .map(|o| (o.clone(), MibValue::Int(1)))
            .collect();
        let mut seen = Vec::new();
        // Start strictly below everything: the empty OID precedes
        // every real one.
        let mut cursor = Oid::default();
        while let Some((next, _)) = mib.get_next(&cursor) {
            seen.push(next.clone());
            cursor = next.clone();
        }
        let expected: Vec<Oid> = oids.into_iter().collect();
        prop_assert_eq!(&seen, &expected);
        prop_assert!(seen.windows(2).all(|w| w[0] < w[1]));
    }

    /// A walk over any prefix returns exactly the objects under that
    /// prefix, in order.
    #[test]
    fn walk_equals_filtered_scan(
        oids in prop::collection::btree_set(oid_strategy(), 0..40),
        prefix in oid_strategy(),
    ) {
        let mib: MibTree = oids
            .iter()
            .map(|o| (o.clone(), MibValue::Int(0)))
            .collect();
        let walked: Vec<Oid> = mib.walk(&prefix).map(|(o, _)| o.clone()).collect();
        let scanned: Vec<Oid> = mib
            .iter()
            .filter(|(o, _)| o.starts_with(&prefix))
            .map(|(o, _)| o.clone())
            .collect();
        prop_assert_eq!(walked, scanned);
    }

    /// Interface byte counters never decrease as time advances, whatever
    /// the tick cadence.
    #[test]
    fn if_counters_are_monotone(
        seed in 0u64..1000,
        steps in prop::collection::vec(1u64..120_000, 1..30),
    ) {
        let mut dev = Device::builder("d", DeviceKind::Router).seed(seed).build();
        let oid = agentgrid_net::oids::if_in_octets(1);
        let mut t = 0u64;
        let mut prev = dev.mib().get(&oid).unwrap().as_f64().unwrap();
        for step in steps {
            t += step;
            dev.tick(t);
            let v = dev.mib().get(&oid).unwrap().as_f64().unwrap();
            prop_assert!(v >= prev, "counter went backwards: {} -> {}", prev, v);
            prev = v;
        }
    }

    /// CPU load always stays within gauge bounds under any tick cadence.
    #[test]
    fn cpu_load_stays_in_percentage_range(
        seed in 0u64..1000,
        ticks in prop::collection::vec(1u64..600_000, 1..30),
    ) {
        let mut dev = Device::builder("d", DeviceKind::Server).seed(seed).build();
        let oid = agentgrid_net::oids::hr_processor_load(1);
        let mut t = 0u64;
        for step in ticks {
            t += step;
            dev.tick(t);
            let v = dev.mib().get(&oid).unwrap().as_f64().unwrap();
            prop_assert!((0.0..=100.0).contains(&v), "{v}");
        }
    }

    /// An SNMP walk from the root returns the whole MIB of a live device.
    #[test]
    fn snmp_walk_root_sees_everything(seed in 0u64..200) {
        let mut dev = Device::builder("d", DeviceKind::Switch).seed(seed).build();
        dev.tick(60_000);
        let total = dev.mib().len();
        let rows = snmp::walk(&mut dev, &Oid::new(vec![1])).unwrap();
        prop_assert_eq!(rows.len(), total);
    }
}
