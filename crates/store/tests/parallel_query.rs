//! Parallel-vs-sequential query parity.
//!
//! The fan-out path splits selected series across scoped threads but
//! folds each series with the same sequential code and merges in
//! series-key order, so its output must be **byte-identical** to the
//! sequential iterator — for any label selection, window width,
//! aggregator and thread count. This file is also the TSan target for
//! the parallel query path (`ci.yml` runs it under
//! `-Zsanitizer=thread`).

use agentgrid_store::{
    AggKind, Classifier, LabelFilter, ManagementStore, Record, SeriesWindows, StoreBackend,
};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        0u8..6,
        prop_oneof![
            Just("cpu.load.1"),
            Just("cpu.load.5"),
            Just("storage.disk.used-pct"),
            Just("storage.ram.used"),
            Just("if.1.in-octets"),
            Just("processes.count"),
        ],
        -1000.0f64..1000.0,
        0u64..50_000,
    )
        .prop_map(|(dev, metric, value, ts)| Record::new(format!("d{dev}"), metric, value, ts * 60))
}

fn filter_strategy() -> impl Strategy<Value = LabelFilter> {
    prop_oneof![
        Just(LabelFilter::Any),
        Just(LabelFilter::class("cpu")),
        Just(LabelFilter::class("cpu").or(LabelFilter::class("disk"))),
        Just(LabelFilter::device("d1").or(LabelFilter::device("d3"))),
        Just(LabelFilter::device("d2").and(LabelFilter::class("interface"))),
        Just(LabelFilter::oid("cpu.load.1").or(LabelFilter::class("process"))),
    ]
}

/// Bit-level view of a result set: f64 compared by representation.
type BitRows<'a> = Vec<(&'a (String, String), Vec<(u64, u64)>)>;

fn as_bits(rows: &[SeriesWindows]) -> BitRows<'_> {
    rows.iter()
        .map(|r| {
            (
                &r.key,
                r.windows
                    .iter()
                    .map(|w| (w.window_ms, w.value.to_bits()))
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    /// Fan-out over any thread count returns byte-identical results to
    /// the sequential path, on both backends.
    #[test]
    fn parallel_query_matches_sequential(
        records in prop::collection::vec(record_strategy(), 1..120),
        filter in filter_strategy(),
        step in prop_oneof![Just(1_000u64), Just(10_000), Just(60_000)],
        threads in 1usize..9,
        kind_ix in 0usize..6,
    ) {
        let kind = [AggKind::Min, AggKind::Max, AggKind::Mean, AggKind::Sum, AggKind::Count, AggKind::Trend][kind_ix];
        for backend in [StoreBackend::Chunked, StoreBackend::Naive] {
            let mut store = ManagementStore::with_backend(backend, Classifier::standard());
            store.insert_all(records.iter().cloned());
            let seq = store.query_windows(&filter, 0, u64::MAX, step, kind);
            let par = store.query_windows_parallel(&filter, 0, u64::MAX, step, kind, threads);
            prop_assert_eq!(
                as_bits(&seq),
                as_bits(&par),
                "{:?} {:?} threads={}",
                backend,
                kind,
                threads
            );
        }
    }
}

/// Many reader threads querying the same store concurrently (the shape
/// TSan needs to see): every thread gets the sequential answer.
#[test]
fn concurrent_readers_agree_with_sequential() {
    let mut store = ManagementStore::default();
    for i in 0..2_000u64 {
        for dev in ["r1", "r2", "r3", "r4"] {
            store.insert(Record::new(dev, "cpu.load.1", (i % 31) as f64, i * 1_000));
        }
    }
    let filter = LabelFilter::class("cpu");
    let expected = store.query_windows(&filter, 0, u64::MAX, 120_000, AggKind::Mean);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for threads in [1, 2, 4, 8] {
                    let got = store.query_windows_parallel(
                        &filter,
                        0,
                        u64::MAX,
                        120_000,
                        AggKind::Mean,
                        threads,
                    );
                    assert_eq!(as_bits(&expected), as_bits(&got));
                }
            });
        }
    });
}

/// The lazy aggregate cache is populated safely under concurrent
/// `stats` readers (OnceLock initialization racing across threads).
#[test]
fn concurrent_stats_after_invalidation_are_consistent() {
    let mut store = ManagementStore::default();
    for i in 0..5_000u64 {
        store.insert(Record::new("d", "cpu.load.1", (i % 17) as f64, i * 1_000));
    }
    // Invalidate the rolling aggregate via an out-of-order insert.
    store.insert(Record::new("d", "cpu.load.1", 3.0, 500));
    let expected = store.stats("d", "cpu.load.1", 0, u64::MAX).unwrap();
    store.insert(Record::new("d", "cpu.load.1", 4.0, 750));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(|| store.stats("d", "cpu.load.1", 0, u64::MAX).unwrap()))
            .collect();
        for h in handles {
            let got = h.join().unwrap();
            assert_eq!(got.count, expected.count + 1);
            assert_eq!(got.min.to_bits(), expected.min.to_bits());
            assert_eq!(got.max.to_bits(), expected.max.to_bits());
        }
    });
}
