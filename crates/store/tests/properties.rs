//! Property-based tests for the management store.

use agentgrid_store::{Classifier, ManagementStore, Record, ReplicatedStore};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        0u8..5,
        prop_oneof![
            Just("cpu.load.1"),
            Just("storage.disk.used-pct"),
            Just("storage.ram.used"),
            Just("if.1.in-octets"),
            Just("processes.count"),
            Just("weird.metric"),
        ],
        -1000.0f64..1000.0,
        0u64..100_000,
        0u8..3,
    )
        .prop_map(|(dev, metric, value, ts, site)| {
            Record::new(format!("d{dev}"), metric, value, ts).with_site(format!("s{site}"))
        })
}

proptest! {
    /// The partition index agrees with classifying each series key
    /// directly, for any insertion sequence.
    #[test]
    fn partition_index_is_consistent(records in prop::collection::vec(record_strategy(), 0..60)) {
        let mut store = ManagementStore::default();
        store.insert_all(records.clone());
        let classifier = Classifier::standard();
        for partition in store.partitions() {
            for (_, metric) in store.by_partition(partition) {
                prop_assert_eq!(classifier.partition_of(metric), partition);
            }
        }
        // Every inserted record's series appears in exactly one partition.
        for r in &records {
            let hits = store
                .partitions()
                .iter()
                .filter(|p| {
                    store
                        .by_partition(p)
                        .any(|(d, m)| d == r.device && m == r.metric)
                })
                .count();
            prop_assert_eq!(hits, 1);
        }
    }

    /// `len` equals the number of distinct `(device, metric, timestamp)`
    /// triples inserted.
    #[test]
    fn len_counts_distinct_points(records in prop::collection::vec(record_strategy(), 0..60)) {
        let mut store = ManagementStore::default();
        store.insert_all(records.clone());
        let distinct: std::collections::BTreeSet<_> = records
            .iter()
            .map(|r| (r.device.clone(), r.metric.clone(), r.timestamp_ms))
            .collect();
        prop_assert_eq!(store.len(), distinct.len());
    }

    /// Range queries return points in strictly increasing time order and
    /// only inside the half-open window.
    #[test]
    fn range_is_ordered_and_windowed(
        records in prop::collection::vec(record_strategy(), 0..60),
        from in 0u64..100_000,
        width in 0u64..100_000,
    ) {
        let mut store = ManagementStore::default();
        store.insert_all(records);
        let to = from.saturating_add(width);
        for device in store.devices().map(str::to_owned).collect::<Vec<_>>() {
            for metric in store.metrics_of(&device).map(str::to_owned).collect::<Vec<_>>() {
                let points: Vec<_> = store.range(&device, &metric, from, to).collect();
                prop_assert!(points.windows(2).all(|w| w[0].0 < w[1].0));
                prop_assert!(points.iter().all(|(t, _)| (from..to).contains(t)));
            }
        }
    }

    /// Pruning then counting equals filtering by the horizon.
    #[test]
    fn prune_keeps_exactly_recent_points(
        records in prop::collection::vec(record_strategy(), 0..60),
        horizon in 0u64..120_000,
    ) {
        let mut store = ManagementStore::default();
        store.insert_all(records);
        let before = store.len();
        let removed = store.prune_before(horizon);
        prop_assert_eq!(store.len() + removed, before);
        for device in store.devices().map(str::to_owned).collect::<Vec<_>>() {
            for metric in store.metrics_of(&device).map(str::to_owned).collect::<Vec<_>>() {
                prop_assert!(store
                    .range(&device, &metric, 0, horizon)
                    .next()
                    .is_none());
            }
        }
    }

    /// Rolling per-series aggregates stay equal to a fresh scan of the
    /// retained points after any interleaving of inserts (in- and
    /// out-of-order, including same-timestamp replacements) and prunes.
    #[test]
    fn rolling_aggregates_match_fresh_scan(
        batches in prop::collection::vec(
            (prop::collection::vec(record_strategy(), 0..20), prop::option::of(0u64..120_000)),
            1..4,
        ),
    ) {
        let mut store = ManagementStore::default();
        for (records, prune_horizon) in batches {
            store.insert_all(records);
            if let Some(horizon) = prune_horizon {
                store.prune_before(horizon);
            }
            for device in store.devices().map(str::to_owned).collect::<Vec<_>>() {
                for metric in store.metrics_of(&device).map(str::to_owned).collect::<Vec<_>>() {
                    // Reference: the original full forward scan, folded in
                    // the same order the rolling aggregate accumulates.
                    let points: Vec<(u64, f64)> = store.range(&device, &metric, 0, u64::MAX).collect();
                    let stats = store.stats(&device, &metric, 0, u64::MAX);
                    if points.is_empty() {
                        prop_assert!(stats.is_none());
                        prop_assert!(store.latest(&device, &metric).is_none());
                        continue;
                    }
                    let stats = stats.expect("non-empty series has stats");
                    let mut min = f64::INFINITY;
                    let mut max = f64::NEG_INFINITY;
                    let mut sum = 0.0;
                    for (_, v) in &points {
                        min = min.min(*v);
                        max = max.max(*v);
                        sum += *v;
                    }
                    prop_assert_eq!(stats.count, points.len());
                    prop_assert_eq!(stats.min, min);
                    prop_assert_eq!(stats.max, max);
                    prop_assert_eq!(stats.mean, sum / points.len() as f64);
                    let last = *points.last().unwrap();
                    prop_assert_eq!(stats.last, last.1);
                    prop_assert_eq!(store.latest(&device, &metric), Some(last));
                }
            }
        }
    }

    /// Replication invariant: after any sequence of writes, failures and
    /// recoveries (with at least one live replica at all times), all live
    /// replicas are consistent.
    #[test]
    fn replicas_stay_consistent(
        ops in prop::collection::vec((0u8..4, 0u64..100_000), 1..40),
    ) {
        let mut store = ReplicatedStore::new(3);
        for (op, t) in ops {
            match op {
                0 | 1 => {
                    let _ = store.insert(Record::new("d", "m", t as f64, t));
                }
                2 => {
                    // Fail a replica but never the last live one.
                    let target = (t % 3) as usize;
                    if store.live_count() > 1 {
                        store.fail(target).unwrap();
                    }
                }
                _ => {
                    let target = (t % 3) as usize;
                    store.recover(target).unwrap();
                }
            }
            prop_assert!(store.is_consistent());
        }
    }
}
