//! Chunked-vs-naive equivalence harness.
//!
//! [`NaiveStore`] is the executable specification (the store exactly as
//! it shipped before chunking — same convention as the rules crate's
//! `NaiveEngine`). These proptests drive both engines with identical
//! operation sequences — in-order appends, out-of-order inserts,
//! same-timestamp replacements and prunes, over small chunk capacities
//! so seal/split/merge paths are exercised constantly — and require
//! **bit-identical** observables: `stats`, `latest`, `trend_per_min`,
//! `range` and windowed queries. Float comparisons go through
//! `to_bits`, so `-0.0` vs `0.0` or differently-ordered summation
//! cannot slip through.
//!
//! The second half round-trips the chunk codec over adversarial floats
//! (`-0.0`, subnormals, infinities, random bit patterns) and extreme
//! timestamp deltas, and pins NaN rejection.

use agentgrid_store::{
    AggKind, ChunkedStore, Classifier, EncodeError, LabelFilter, NaiveStore, Record, SealedChunk,
};
use proptest::prelude::*;

/// One store operation, applied to both engines in lockstep.
#[derive(Debug, Clone)]
enum Op {
    Insert(Record),
    Prune(u64),
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        0u8..4,
        prop_oneof![
            Just("cpu.load.1"),
            Just("storage.disk.used-pct"),
            Just("if.1.in-octets"),
            Just("weird.metric"),
        ],
        prop_oneof![
            // Shim prop_oneof! is unweighted; repeat the common arm.
            -1000.0f64..1000.0,
            -1000.0f64..1000.0,
            -1000.0f64..1000.0,
            -1000.0f64..1000.0,
            Just(0.0),
            Just(-0.0),
            Just(f64::MIN_POSITIVE / 4.0),
        ],
        // Narrow timestamp range → frequent out-of-order inserts and
        // same-timestamp replacements across the sequence.
        0u64..2_000,
        0u8..2,
    )
        .prop_map(|(dev, metric, value, ts, site)| {
            Record::new(format!("d{dev}"), metric, value, ts * 50).with_site(format!("s{site}"))
        })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let insert = || record_strategy().prop_map(Op::Insert);
    prop_oneof![
        insert(),
        insert(),
        insert(),
        insert(),
        insert(),
        insert(),
        insert(),
        insert(),
        insert(),
        (0u64..120_000).prop_map(Op::Prune),
    ]
}

fn bits(v: f64) -> u64 {
    v.to_bits()
}

/// Asserts every observable of the two engines is bit-identical.
fn assert_equivalent(chunked: &ChunkedStore, naive: &NaiveStore) -> Result<(), TestCaseError> {
    prop_assert_eq!(chunked.len(), naive.len());
    prop_assert_eq!(
        chunked.devices().collect::<Vec<_>>(),
        naive.devices().collect::<Vec<_>>()
    );
    prop_assert_eq!(chunked.partitions(), naive.partitions());
    let all = LabelFilter::Any;
    prop_assert_eq!(chunked.select(&all), naive.select(&all));
    for (device, metric) in naive.select(&all) {
        prop_assert_eq!(
            chunked.latest(&device, &metric).map(|(t, v)| (t, bits(v))),
            naive.latest(&device, &metric).map(|(t, v)| (t, bits(v)))
        );
        for (from, to) in [
            (0u64, u64::MAX),
            (10_000, 60_000),
            (25_000, 26_000),
            (99_000, 120_000),
        ] {
            let c: Vec<(u64, u64)> = chunked
                .range(&device, &metric, from, to)
                .map(|(t, v)| (t, bits(v)))
                .collect();
            let n: Vec<(u64, u64)> = naive
                .range(&device, &metric, from, to)
                .map(|(t, v)| (t, bits(v)))
                .collect();
            prop_assert_eq!(c, n, "range [{}, {}) of {}/{}", from, to, device, metric);
            let c = chunked.stats(&device, &metric, from, to);
            let n = naive.stats(&device, &metric, from, to);
            prop_assert_eq!(c.is_some(), n.is_some());
            if let (Some(c), Some(n)) = (c, n) {
                prop_assert_eq!(c.count, n.count);
                prop_assert_eq!(bits(c.min), bits(n.min), "min of {}/{}", device, metric);
                prop_assert_eq!(bits(c.max), bits(n.max), "max of {}/{}", device, metric);
                prop_assert_eq!(bits(c.mean), bits(n.mean), "mean of {}/{}", device, metric);
                prop_assert_eq!(bits(c.last), bits(n.last), "last of {}/{}", device, metric);
            }
            let c = chunked.trend_per_min(&device, &metric, from, to);
            let n = naive.trend_per_min(&device, &metric, from, to);
            prop_assert_eq!(c.map(bits), n.map(bits), "trend of {}/{}", device, metric);
        }
    }
    Ok(())
}

proptest! {
    /// The chunked engine is observationally bit-identical to the
    /// NaiveStore spec under arbitrary interleavings of in-order
    /// appends, out-of-order inserts, replacements and prunes — at
    /// chunk capacities small enough that every sequence seals, splits
    /// and merges chunks.
    #[test]
    fn chunked_store_matches_naive_spec(
        ops in prop::collection::vec(op_strategy(), 1..120),
        capacity in prop_oneof![Just(4usize), Just(8), Just(32)],
    ) {
        let mut chunked = ChunkedStore::with_chunk_capacity(Classifier::standard(), capacity);
        let mut naive = NaiveStore::new(Classifier::standard());
        for op in ops {
            match op {
                Op::Insert(record) => {
                    chunked.insert(record.clone());
                    naive.insert(record);
                }
                Op::Prune(horizon) => {
                    prop_assert_eq!(chunked.prune_before(horizon), naive.prune_before(horizon));
                }
            }
        }
        assert_equivalent(&chunked, &naive)?;
    }

    /// Windowed multi-series queries agree bit-for-bit across engines
    /// for every aggregator and a range of window widths.
    #[test]
    fn windowed_queries_match_naive_spec(
        records in prop::collection::vec(record_strategy(), 1..80),
        step in prop_oneof![Just(1_000u64), Just(7_000), Just(30_000), Just(u64::MAX / 2)],
        capacity in prop_oneof![Just(4usize), Just(16)],
    ) {
        let mut chunked = ChunkedStore::with_chunk_capacity(Classifier::standard(), capacity);
        let mut naive = NaiveStore::new(Classifier::standard());
        for r in records {
            chunked.insert(r.clone());
            naive.insert(r);
        }
        let filter = LabelFilter::class("cpu").or(LabelFilter::class("disk")).or(LabelFilter::Any);
        for kind in [AggKind::Min, AggKind::Max, AggKind::Mean, AggKind::Sum, AggKind::Count, AggKind::Trend] {
            let c = chunked.query_windows(&filter, 0, u64::MAX, step, kind);
            let n = naive.query_windows(&filter, 0, u64::MAX, step, kind);
            prop_assert_eq!(c.len(), n.len(), "{:?}", kind);
            for (cw, nw) in c.iter().zip(&n) {
                prop_assert_eq!(&cw.key, &nw.key);
                let cb: Vec<(u64, u64)> = cw.windows.iter().map(|w| (w.window_ms, bits(w.value))).collect();
                let nb: Vec<(u64, u64)> = nw.windows.iter().map(|w| (w.window_ms, bits(w.value))).collect();
                prop_assert_eq!(cb, nb, "{:?} windows of {:?}", kind, cw.key);
            }
        }
    }

    /// The chunk codec is bit-lossless over adversarial values: random
    /// bit patterns (filtered of NaN), signed zeros, subnormals,
    /// infinities and the extreme finite magnitudes.
    #[test]
    fn codec_round_trips_adversarial_floats(
        raw in prop::collection::vec(
            prop_oneof![
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                Just(0.0f64.to_bits()),
                Just((-0.0f64).to_bits()),
                Just((f64::MIN_POSITIVE / 8.0).to_bits()),
                Just(f64::INFINITY.to_bits()),
                Just(f64::NEG_INFINITY.to_bits()),
                Just(f64::MAX.to_bits()),
                Just(f64::MIN.to_bits()),
            ],
            1..300,
        ),
    ) {
        let points: Vec<(u64, f64)> = raw
            .iter()
            .map(|&b| f64::from_bits(b))
            .filter(|v| !v.is_nan())
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        if points.is_empty() {
            // Everything was NaN; nothing to round-trip.
            return Ok(());
        }
        let chunk = SealedChunk::try_encode(&points).unwrap();
        let decoded = chunk.decode();
        prop_assert_eq!(points.len(), decoded.len());
        for (a, b) in points.iter().zip(&decoded) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(bits(a.1), bits(b.1));
        }
    }

    /// The chunk codec is exact over extreme timestamp deltas — from
    /// 1 ms cadence jitter up to deltas that only fit the 64-bit raw
    /// escape bucket.
    #[test]
    fn codec_round_trips_extreme_deltas(
        deltas in prop::collection::vec(
            prop_oneof![
                1u64..500,
                1u64..500,
                1u64..500,
                1u64..500,
                1u64..100_000,
                1u64..100_000,
                (u32::MAX as u64)..(u32::MAX as u64 * 1024),
                Just(u64::MAX / 4),
            ],
            1..200,
        ),
        start in 0u64..1_000_000,
    ) {
        let mut ts = start;
        let mut points = vec![(ts, 1.0)];
        for (i, d) in deltas.iter().enumerate() {
            let Some(next) = ts.checked_add(*d) else { break };
            ts = next;
            points.push((ts, i as f64));
        }
        let chunk = SealedChunk::try_encode(&points).unwrap();
        prop_assert_eq!(chunk.decode(), points);
    }

    /// NaN anywhere in the input is rejected, never silently encoded.
    #[test]
    fn codec_rejects_nan(
        n in 1usize..50,
        nan_at in 0usize..50,
        nan_bits in prop_oneof![
            Just(f64::NAN.to_bits()),
            // A signalling-ish payload: NaN with a nonzero mantissa.
            Just(0x7ff0_0000_0000_0001u64),
            Just(0xfff8_dead_beef_0000u64),
        ],
    ) {
        let mut points: Vec<(u64, f64)> = (0..n).map(|i| (i as u64, i as f64)).collect();
        let slot = nan_at % n;
        points[slot].1 = f64::from_bits(nan_bits);
        prop_assert_eq!(SealedChunk::try_encode(&points), Err(EncodeError::NotANumber));
    }
}

/// Regression test for the prune/rescan fix: a burst of prunes on the
/// chunked engine performs **zero** aggregate refolds until the next
/// `stats` call, and that single lazy refold is bit-identical to the
/// naive engine's eagerly-rescanned aggregates.
#[test]
fn prune_burst_refolds_lazily_and_matches_eager_spec() {
    let mut chunked = ChunkedStore::with_chunk_capacity(Classifier::standard(), 16);
    let mut naive = NaiveStore::new(Classifier::standard());
    for i in 0..500u64 {
        let r = Record::new("d0", "cpu.load.1", (i % 23) as f64, i * 1_000);
        chunked.insert(r.clone());
        naive.insert(r);
    }
    // Warm the whole-series fast path, then prune repeatedly.
    assert!(chunked.stats("d0", "cpu.load.1", 0, u64::MAX).is_some());
    let refolds_before = chunked.agg_refolds();
    for horizon in [50_000u64, 100_000, 150_000, 200_000, 250_000] {
        assert_eq!(
            chunked.prune_before(horizon),
            naive.prune_before(horizon),
            "prune at {horizon}"
        );
    }
    assert_eq!(
        chunked.agg_refolds(),
        refolds_before,
        "prunes must only invalidate, never eagerly refold"
    );
    let c = chunked.stats("d0", "cpu.load.1", 0, u64::MAX).unwrap();
    let n = naive.stats("d0", "cpu.load.1", 0, u64::MAX).unwrap();
    assert_eq!(
        chunked.agg_refolds(),
        refolds_before + 1,
        "one refold serves the whole prune burst"
    );
    assert_eq!(c.count, n.count);
    assert_eq!(c.min.to_bits(), n.min.to_bits());
    assert_eq!(c.max.to_bits(), n.max.to_bits());
    assert_eq!(c.mean.to_bits(), n.mean.to_bits());
    // A second stats call is served from the cache.
    let _ = chunked.stats("d0", "cpu.load.1", 0, u64::MAX);
    assert_eq!(chunked.agg_refolds(), refolds_before + 1);
}
