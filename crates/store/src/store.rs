use std::collections::{BTreeMap, BTreeSet};

use crate::{Classifier, Record};

/// Aggregate statistics over one series range (used by level-2
/// "consolidation" analyses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesStats {
    /// Number of points.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Latest value in the range.
    pub last: f64,
}

/// Rolling aggregates of one series, kept in step with its points.
///
/// Accumulation happens in ascending-timestamp order in both the rolling
/// (append) path and the recompute path, so `sum`/`min`/`max` are
/// bit-for-bit identical to a fresh forward scan of the points.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SeriesAgg {
    count: usize,
    min: f64,
    max: f64,
    sum: f64,
}

impl SeriesAgg {
    fn empty() -> Self {
        SeriesAgg {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Folds in one value appended after every existing point.
    fn append(&mut self, value: f64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
    }

    /// Recomputes from scratch — the fallback for out-of-order inserts,
    /// same-timestamp replacements and pruning, where rolling updates
    /// can't be done exactly (min/max/sum are not invertible).
    fn rescan(points: &BTreeMap<u64, f64>) -> Self {
        let mut agg = SeriesAgg::empty();
        for v in points.values() {
            agg.append(*v);
        }
        agg
    }
}

/// One `(device, metric)` series: its points plus rolling aggregates.
#[derive(Debug, Clone)]
struct Series {
    /// timestamp → value.
    points: BTreeMap<u64, f64>,
    agg: SeriesAgg,
}

impl Series {
    fn new() -> Self {
        Series {
            points: BTreeMap::new(),
            agg: SeriesAgg::empty(),
        }
    }
}

/// The classifier grid's indexed time-series store.
///
/// Inserting a [`Record`] files it under its `(device, metric)` series,
/// updates the per-device / per-metric / per-partition indexes, and tags
/// it with the partition assigned by the [`Classifier`]. Everything is
/// retrievable without scanning: the paper's "easy-to-retrieve form".
/// Whole-series [`stats`](ManagementStore::stats) and
/// [`latest`](ManagementStore::latest) are O(log n) lookups against
/// rolling per-series aggregates; sub-range queries fall back to a scan.
///
/// # Examples
///
/// ```
/// use agentgrid_store::{Classifier, ManagementStore, Record};
///
/// let mut store = ManagementStore::new(Classifier::standard());
/// for t in 0..5u64 {
///     store.insert(Record::new("r1", "cpu.load.1", 50.0 + t as f64, t * 60_000));
/// }
/// let stats = store.stats("r1", "cpu.load.1", 0, u64::MAX).unwrap();
/// assert_eq!(stats.count, 5);
/// assert_eq!(stats.last, 54.0);
/// ```
#[derive(Debug, Clone)]
pub struct ManagementStore {
    classifier: Classifier,
    /// (device, metric) → series points + rolling aggregates.
    series: BTreeMap<(String, String), Series>,
    /// device → metrics observed on it.
    device_index: BTreeMap<String, BTreeSet<String>>,
    /// partition → (device, metric) keys in it.
    partition_index: BTreeMap<String, BTreeSet<(String, String)>>,
    /// site → devices seen at it.
    site_index: BTreeMap<String, BTreeSet<String>>,
    len: usize,
}

impl ManagementStore {
    /// Creates an empty store with the given classifier.
    pub fn new(classifier: Classifier) -> Self {
        ManagementStore {
            classifier,
            series: BTreeMap::new(),
            device_index: BTreeMap::new(),
            partition_index: BTreeMap::new(),
            site_index: BTreeMap::new(),
            len: 0,
        }
    }

    /// The classifier in use.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// Inserts one record. Re-inserting the same `(device, metric,
    /// timestamp)` replaces the value (idempotent collection retries).
    pub fn insert(&mut self, record: Record) {
        let partition = self.classifier.classify(&record).to_owned();
        let key = (record.device.clone(), record.metric.clone());
        let series = self.series.entry(key.clone()).or_insert_with(Series::new);
        let appended = series
            .points
            .last_key_value()
            .is_none_or(|(t, _)| record.timestamp_ms > *t);
        if series
            .points
            .insert(record.timestamp_ms, record.value)
            .is_none()
        {
            self.len += 1;
        }
        if appended {
            series.agg.append(record.value);
        } else {
            // Out-of-order insert or same-timestamp replacement: rebuild
            // so the accumulation order stays a forward scan.
            series.agg = SeriesAgg::rescan(&series.points);
        }
        self.device_index
            .entry(record.device.clone())
            .or_default()
            .insert(record.metric.clone());
        self.partition_index
            .entry(partition)
            .or_default()
            .insert(key);
        self.site_index
            .entry(record.site)
            .or_default()
            .insert(record.device);
    }

    /// Inserts many records.
    pub fn insert_all(&mut self, records: impl IntoIterator<Item = Record>) {
        for r in records {
            self.insert(r);
        }
    }

    /// Total number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All devices seen, in name order.
    pub fn devices(&self) -> impl Iterator<Item = &str> {
        self.device_index.keys().map(String::as_str)
    }

    /// Metrics observed on one device.
    pub fn metrics_of(&self, device: &str) -> impl Iterator<Item = &str> {
        self.device_index
            .get(device)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    /// Devices seen at a site.
    pub fn devices_at(&self, site: &str) -> impl Iterator<Item = &str> {
        self.site_index
            .get(site)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    /// Non-empty partitions, in name order.
    pub fn partitions(&self) -> Vec<&str> {
        self.partition_index
            .iter()
            .filter(|(_, keys)| !keys.is_empty())
            .map(|(p, _)| p.as_str())
            .collect()
    }

    /// Series keys `(device, metric)` in a partition.
    pub fn by_partition<'a>(
        &'a self,
        partition: &str,
    ) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        self.partition_index
            .get(partition)
            .into_iter()
            .flatten()
            .map(|(d, m)| (d.as_str(), m.as_str()))
    }

    /// Points of one series in `[from_ms, to_ms)`, in time order.
    pub fn range(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.series
            .get(&(device.to_owned(), metric.to_owned()))
            .into_iter()
            .flat_map(move |series| series.points.range(from_ms..to_ms).map(|(t, v)| (*t, *v)))
    }

    /// Latest point of a series, if any. O(log n).
    pub fn latest(&self, device: &str, metric: &str) -> Option<(u64, f64)> {
        self.series
            .get(&(device.to_owned(), metric.to_owned()))?
            .points
            .last_key_value()
            .map(|(t, v)| (*t, *v))
    }

    /// Aggregate statistics over `[from_ms, to_ms)`; `None` when the
    /// range holds no points.
    ///
    /// When the window covers the whole series — the common "consolidate
    /// everything we have" case — this is an O(log n) lookup against the
    /// rolling aggregates; sub-ranges fall back to the scan.
    pub fn stats(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> Option<SeriesStats> {
        let series = self.series.get(&(device.to_owned(), metric.to_owned()))?;
        let (first_ts, _) = series.points.first_key_value()?;
        let (last_ts, last) = series.points.last_key_value()?;
        if from_ms <= *first_ts && to_ms > *last_ts {
            let agg = &series.agg;
            return Some(SeriesStats {
                count: agg.count,
                min: agg.min,
                max: agg.max,
                mean: agg.sum / agg.count as f64,
                last: *last,
            });
        }
        let mut count = 0usize;
        let (mut min, mut max, mut sum, mut last) = (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0.0);
        for (_, v) in series.points.range(from_ms..to_ms).map(|(t, v)| (*t, *v)) {
            count += 1;
            min = min.min(v);
            max = max.max(v);
            sum += v;
            last = v;
        }
        if count == 0 {
            return None;
        }
        Some(SeriesStats {
            count,
            min,
            max,
            mean: sum / count as f64,
            last,
        })
    }

    /// Least-squares slope of a series over `[from_ms, to_ms)`, in value
    /// units **per minute** — the level-2 trend estimate behind "disk is
    /// filling" style rules. `None` with fewer than two points or zero
    /// time spread.
    ///
    /// Streams over the range twice (means, then residuals) instead of
    /// materialising it; the arithmetic — and therefore the exact float
    /// result — is unchanged from the collecting version.
    pub fn trend_per_min(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> Option<f64> {
        let mut count = 0usize;
        let mut t0 = 0u64;
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        for (t, y) in self.range(device, metric, from_ms, to_ms) {
            if count == 0 {
                t0 = t;
            }
            count += 1;
            // Work in minutes relative to the first point for conditioning.
            sum_x += (t - t0) as f64 / 60_000.0;
            sum_y += y;
        }
        if count < 2 {
            return None;
        }
        let n = count as f64;
        let mean_x = sum_x / n;
        let mean_y = sum_y / n;
        let mut num = 0.0;
        let mut den = 0.0;
        for (t, y) in self.range(device, metric, from_ms, to_ms) {
            let x = (t - t0) as f64 / 60_000.0;
            num += (x - mean_x) * (y - mean_y);
            den += (x - mean_x) * (x - mean_x);
        }
        if den == 0.0 {
            return None;
        }
        Some(num / den)
    }

    /// Drops every point older than `horizon_ms`, returning how many were
    /// removed. Series and index entries that become empty are kept (the
    /// devices still exist; only their history aged out).
    pub fn prune_before(&mut self, horizon_ms: u64) -> usize {
        let mut removed = 0;
        for series in self.series.values_mut() {
            let keep = series.points.split_off(&horizon_ms);
            let dropped = series.points.len();
            series.points = keep;
            if dropped > 0 {
                removed += dropped;
                series.agg = SeriesAgg::rescan(&series.points);
            }
        }
        self.len -= removed;
        removed
    }
}

impl Default for ManagementStore {
    fn default() -> Self {
        ManagementStore::new(Classifier::standard())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ManagementStore {
        let mut store = ManagementStore::default();
        store.insert_all([
            Record::new("r1", "cpu.load.1", 40.0, 0).with_site("hq"),
            Record::new("r1", "cpu.load.1", 60.0, 60_000).with_site("hq"),
            Record::new("r1", "if.1.in-octets", 100.0, 0).with_site("hq"),
            Record::new("s1", "storage.disk.used-pct", 70.0, 0).with_site("branch"),
        ]);
        store
    }

    #[test]
    fn insert_updates_all_indexes() {
        let store = sample_store();
        assert_eq!(store.len(), 4);
        assert_eq!(store.devices().collect::<Vec<_>>(), ["r1", "s1"]);
        assert_eq!(
            store.metrics_of("r1").collect::<Vec<_>>(),
            ["cpu.load.1", "if.1.in-octets"]
        );
        assert_eq!(store.devices_at("branch").collect::<Vec<_>>(), ["s1"]);
        assert_eq!(store.partitions(), ["cpu", "disk", "interface"]);
        assert_eq!(
            store.by_partition("disk").collect::<Vec<_>>(),
            [("s1", "storage.disk.used-pct")]
        );
    }

    #[test]
    fn duplicate_timestamp_replaces_value() {
        let mut store = sample_store();
        store.insert(Record::new("r1", "cpu.load.1", 99.0, 0));
        assert_eq!(store.len(), 4, "count unchanged");
        assert_eq!(
            store.range("r1", "cpu.load.1", 0, 1).next(),
            Some((0, 99.0))
        );
    }

    #[test]
    fn range_is_half_open_and_ordered() {
        let store = sample_store();
        let points: Vec<_> = store.range("r1", "cpu.load.1", 0, 60_000).collect();
        assert_eq!(points, [(0, 40.0)]);
        let all: Vec<_> = store.range("r1", "cpu.load.1", 0, u64::MAX).collect();
        assert_eq!(all, [(0, 40.0), (60_000, 60.0)]);
    }

    #[test]
    fn latest_returns_newest_point() {
        let store = sample_store();
        assert_eq!(store.latest("r1", "cpu.load.1"), Some((60_000, 60.0)));
        assert_eq!(store.latest("r1", "nope"), None);
    }

    #[test]
    fn stats_aggregate_correctly() {
        let store = sample_store();
        let s = store.stats("r1", "cpu.load.1", 0, u64::MAX).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 40.0);
        assert_eq!(s.max, 60.0);
        assert_eq!(s.mean, 50.0);
        assert_eq!(s.last, 60.0);
        assert!(store.stats("r1", "cpu.load.1", 1, 2).is_none());
    }

    #[test]
    fn prune_removes_old_points_only() {
        let mut store = sample_store();
        let removed = store.prune_before(30_000);
        assert_eq!(removed, 3);
        assert_eq!(store.len(), 1);
        assert_eq!(store.latest("r1", "cpu.load.1"), Some((60_000, 60.0)));
        assert_eq!(store.latest("s1", "storage.disk.used-pct"), None);
    }

    #[test]
    fn trend_recovers_a_linear_ramp() {
        let mut store = ManagementStore::default();
        // 2 units per minute, sampled every 30 s.
        for i in 0..10u64 {
            store.insert(Record::new("d", "storage.disk.used", i as f64, i * 30_000));
        }
        let slope = store
            .trend_per_min("d", "storage.disk.used", 0, u64::MAX)
            .unwrap();
        assert!((slope - 2.0).abs() < 1e-9, "{slope}");
    }

    #[test]
    fn trend_is_zero_for_flat_series_and_none_when_underdetermined() {
        let mut store = ManagementStore::default();
        store.insert(Record::new("d", "m", 5.0, 0));
        assert_eq!(store.trend_per_min("d", "m", 0, u64::MAX), None);
        store.insert(Record::new("d", "m", 5.0, 60_000));
        let slope = store.trend_per_min("d", "m", 0, u64::MAX).unwrap();
        assert!(slope.abs() < 1e-12);
        assert_eq!(store.trend_per_min("ghost", "m", 0, u64::MAX), None);
    }

    #[test]
    fn trend_respects_the_window() {
        let mut store = ManagementStore::default();
        // Rising then flat: windowed trends differ.
        for i in 0..5u64 {
            store.insert(Record::new("d", "m", i as f64, i * 60_000));
        }
        for i in 5..10u64 {
            store.insert(Record::new("d", "m", 4.0, i * 60_000));
        }
        let early = store.trend_per_min("d", "m", 0, 5 * 60_000).unwrap();
        let late = store.trend_per_min("d", "m", 5 * 60_000, u64::MAX).unwrap();
        assert!(early > 0.9);
        assert!(late.abs() < 1e-12);
    }

    #[test]
    fn rolling_aggregates_survive_out_of_order_and_replacement() {
        let mut store = ManagementStore::default();
        store.insert(Record::new("d", "m", 10.0, 60_000));
        store.insert(Record::new("d", "m", 30.0, 120_000));
        // Out-of-order insert.
        store.insert(Record::new("d", "m", 20.0, 0));
        let s = store.stats("d", "m", 0, u64::MAX).unwrap();
        assert_eq!(
            (s.count, s.min, s.max, s.mean, s.last),
            (3, 10.0, 30.0, 20.0, 30.0)
        );
        // Replacement at an existing timestamp (including the old max).
        store.insert(Record::new("d", "m", 5.0, 120_000));
        let s = store.stats("d", "m", 0, u64::MAX).unwrap();
        assert_eq!((s.count, s.min, s.max, s.last), (3, 5.0, 20.0, 5.0));
    }

    #[test]
    fn rolling_aggregates_survive_prune() {
        let mut store = ManagementStore::default();
        for i in 0..10u64 {
            store.insert(Record::new("d", "m", i as f64, i * 1_000));
        }
        store.prune_before(5_000);
        let s = store.stats("d", "m", 0, u64::MAX).unwrap();
        assert_eq!(
            (s.count, s.min, s.max, s.mean, s.last),
            (5, 5.0, 9.0, 7.0, 9.0)
        );
        store.prune_before(u64::MAX);
        assert!(store.stats("d", "m", 0, u64::MAX).is_none());
    }

    #[test]
    fn subrange_stats_fall_back_to_the_scan() {
        let store = sample_store();
        // [0, 60_000) excludes the last point → not the whole series.
        let s = store.stats("r1", "cpu.load.1", 0, 60_000).unwrap();
        assert_eq!((s.count, s.min, s.max, s.last), (1, 40.0, 40.0, 40.0));
    }

    #[test]
    fn empty_store_behaves() {
        let store = ManagementStore::default();
        assert!(store.is_empty());
        assert_eq!(store.partitions().len(), 0);
        assert_eq!(store.range("d", "m", 0, 10).count(), 0);
    }
}
