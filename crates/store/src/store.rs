//! The chunked store engine and the `ManagementStore` facade.

use std::collections::BTreeMap;

use crate::chunks::{ChunkSeries, DEFAULT_CHUNK_CAPACITY};
use crate::index::{LabelFilter, LabelIndex, SeriesKey};
use crate::query::{self, AggKind, SeriesStats, SeriesWindows};
use crate::{Classifier, NaiveStore, Record};

/// The chunk-compressed store backend.
///
/// One [`ChunkSeries`] per `(device, metric)` key — sealed Gorilla
/// chunks plus an uncompressed head buffer — behind the same
/// [`LabelIndex`] the naive backend uses. All aggregate folds go
/// through [`query`], so observables are bit-identical to
/// [`NaiveStore`] (pinned by the equivalence proptests).
#[derive(Debug, Clone)]
pub struct ChunkedStore {
    classifier: Classifier,
    series: BTreeMap<SeriesKey, ChunkSeries>,
    index: LabelIndex,
    len: usize,
    chunk_capacity: usize,
}

impl ChunkedStore {
    /// Creates an empty store with the given classifier and the default
    /// chunk capacity.
    pub fn new(classifier: Classifier) -> Self {
        ChunkedStore::with_chunk_capacity(classifier, DEFAULT_CHUNK_CAPACITY)
    }

    /// Creates an empty store with an explicit points-per-chunk
    /// capacity (minimum 2). Small capacities exercise seal/split/merge
    /// paths in tests.
    pub fn with_chunk_capacity(classifier: Classifier, chunk_capacity: usize) -> Self {
        ChunkedStore {
            classifier,
            series: BTreeMap::new(),
            index: LabelIndex::default(),
            len: 0,
            chunk_capacity: chunk_capacity.max(2),
        }
    }

    /// The classifier in use.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// Inserts one record (same replace-on-equal-timestamp semantics as
    /// [`NaiveStore`]). NaN values must be filtered by the caller (the
    /// facade drops them).
    pub fn insert(&mut self, record: Record) {
        debug_assert!(!record.value.is_nan(), "NaN must be rejected by the caller");
        let partition = self.classifier.classify(&record).to_owned();
        let key = (record.device.clone(), record.metric.clone());
        let capacity = self.chunk_capacity;
        let series = self
            .series
            .entry(key)
            .or_insert_with(|| ChunkSeries::new(capacity));
        if series.upsert(record.timestamp_ms, record.value) {
            self.len += 1;
        }
        self.index
            .observe(&record.device, &record.metric, &partition, &record.site);
    }

    /// Total number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All devices seen, in name order.
    pub fn devices(&self) -> impl Iterator<Item = &str> {
        self.index.devices()
    }

    /// Metrics observed on one device.
    pub fn metrics_of(&self, device: &str) -> impl Iterator<Item = &str> {
        self.index.metrics_of(device)
    }

    /// Devices seen at a site.
    pub fn devices_at(&self, site: &str) -> impl Iterator<Item = &str> {
        self.index.devices_at(site)
    }

    /// Non-empty partitions, in name order.
    pub fn partitions(&self) -> Vec<&str> {
        self.index.partitions()
    }

    /// Series keys `(device, metric)` in a partition.
    pub fn by_partition<'a>(
        &'a self,
        partition: &str,
    ) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        self.index.by_partition(partition)
    }

    /// Sorted series keys matching a label filter.
    pub fn select(&self, filter: &LabelFilter) -> Vec<SeriesKey> {
        self.index.select(filter).into_iter().collect()
    }

    /// Points of one series in `[from_ms, to_ms)`, in time order.
    /// Sealed chunks wholly outside the window are never decoded.
    pub fn range(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.series
            .get(&(device.to_owned(), metric.to_owned()))
            .into_iter()
            .flat_map(move |series| series.iter_range(from_ms, to_ms))
    }

    /// Latest point of a series, if any. O(log n) — served from the
    /// head buffer or the last chunk header, never by decoding.
    pub fn latest(&self, device: &str, metric: &str) -> Option<(u64, f64)> {
        self.series
            .get(&(device.to_owned(), metric.to_owned()))?
            .latest()
    }

    /// Aggregate statistics over `[from_ms, to_ms)`; `None` when the
    /// range holds no points. Whole-series windows hit the lazily
    /// cached rolling aggregates; sub-ranges fold the decoded stream.
    pub fn stats(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> Option<SeriesStats> {
        let series = self.series.get(&(device.to_owned(), metric.to_owned()))?;
        let first_ts = series.first_ts()?;
        let (last_ts, last) = series.latest()?;
        if from_ms <= first_ts && to_ms > last_ts {
            let agg = series.rolling_agg();
            return Some(SeriesStats {
                count: agg.count,
                min: agg.min,
                max: agg.max,
                mean: agg.sum / agg.count as f64,
                last,
            });
        }
        query::fold_stats(series.iter_range(from_ms, to_ms))
    }

    /// Least-squares slope of a series over `[from_ms, to_ms)`, in value
    /// units **per minute**. `None` with fewer than two points or zero
    /// time spread.
    pub fn trend_per_min(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> Option<f64> {
        let series = self.series.get(&(device.to_owned(), metric.to_owned()))?;
        query::fold_trend(|| series.iter_range(from_ms, to_ms))
    }

    /// Windowed aggregates for every series matching `filter`,
    /// sequentially, in series-key order.
    pub fn query_windows(
        &self,
        filter: &LabelFilter,
        from_ms: u64,
        to_ms: u64,
        step_ms: u64,
        kind: AggKind,
    ) -> Vec<SeriesWindows> {
        let keys = self.select(filter);
        keys.into_iter()
            .map(|key| {
                let windows = self.windows_for(&key, from_ms, to_ms, step_ms, kind);
                SeriesWindows { key, windows }
            })
            .collect()
    }

    /// Windowed aggregates of one series: decoded points stream
    /// straight into the shared [`query::WindowFold`], so the output is
    /// bit-identical to folding the naive backend's iterator.
    fn windows_for(
        &self,
        key: &SeriesKey,
        from_ms: u64,
        to_ms: u64,
        step_ms: u64,
        kind: AggKind,
    ) -> Vec<query::WindowPoint> {
        let mut fold = query::WindowFold::new(from_ms, step_ms, kind);
        if let Some(series) = self.series.get(key) {
            series.for_each_run(from_ms, to_ms, &mut fold);
        }
        fold.finish()
    }

    /// [`query_windows`](ChunkedStore::query_windows) fanned out over
    /// `threads` scoped worker threads; results are merged in
    /// series-key order and are byte-identical to the sequential path.
    pub fn query_windows_parallel(
        &self,
        filter: &LabelFilter,
        from_ms: u64,
        to_ms: u64,
        step_ms: u64,
        kind: AggKind,
        threads: usize,
    ) -> Vec<SeriesWindows> {
        let keys = self.select(filter);
        query::fan_out(&keys, threads, |key| {
            let windows = self.windows_for(key, from_ms, to_ms, step_ms, kind);
            SeriesWindows {
                key: key.clone(),
                windows,
            }
        })
    }

    /// Drops every point older than `horizon_ms`, returning how many
    /// were removed. Whole out-of-horizon chunks are dropped without
    /// decoding; aggregates are invalidated lazily.
    pub fn prune_before(&mut self, horizon_ms: u64) -> usize {
        let mut removed = 0;
        for series in self.series.values_mut() {
            removed += series.prune_before(horizon_ms);
        }
        self.len -= removed;
        removed
    }

    /// Stored bytes: encoded chunk payloads plus raw head buffers.
    pub fn storage_bytes(&self) -> usize {
        self.series.values().map(ChunkSeries::storage_bytes).sum()
    }

    /// Total chunks across all series (sealed + non-empty heads).
    pub fn chunk_count(&self) -> usize {
        self.series.values().map(ChunkSeries::chunk_count).sum()
    }

    /// Total lazy aggregate re-folds performed across all series.
    pub fn agg_refolds(&self) -> u64 {
        self.series.values().map(ChunkSeries::refolds).sum()
    }
}

impl Default for ChunkedStore {
    fn default() -> Self {
        ChunkedStore::new(Classifier::standard())
    }
}

/// Which engine a [`ManagementStore`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreBackend {
    /// Chunk-compressed engine (the default).
    #[default]
    Chunked,
    /// Record-per-point reference engine (the executable spec; used by
    /// the CI parity smoke and as the bench baseline).
    Naive,
}

impl StoreBackend {
    /// Parses a backend name (`chunked`/`naive`).
    pub fn parse(name: &str) -> Option<StoreBackend> {
        match name {
            "chunked" => Some(StoreBackend::Chunked),
            "naive" => Some(StoreBackend::Naive),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
enum Inner {
    Chunked(ChunkedStore),
    Naive(NaiveStore),
}

/// The classifier grid's indexed time-series store.
///
/// Inserting a [`Record`] files it under its `(device, metric)` series,
/// updates the label index, and tags it with the partition assigned by
/// the [`Classifier`]. Everything is retrievable without scanning: the
/// paper's "easy-to-retrieve form". Since PR 8 this is a facade over
/// two interchangeable engines — the chunk-compressed default and the
/// record-per-point [`NaiveStore`] spec — selected per instance with
/// [`with_backend`](ManagementStore::with_backend); every observable is
/// bit-identical across the two.
///
/// NaN values are rejected (silently dropped) at this facade for both
/// backends: replace-on-equal-timestamp and min/max aggregation are
/// undefined for NaN, and the chunk encoder refuses it.
///
/// # Examples
///
/// ```
/// use agentgrid_store::{Classifier, ManagementStore, Record};
///
/// let mut store = ManagementStore::new(Classifier::standard());
/// for t in 0..5u64 {
///     store.insert(Record::new("r1", "cpu.load.1", 50.0 + t as f64, t * 60_000));
/// }
/// let stats = store.stats("r1", "cpu.load.1", 0, u64::MAX).unwrap();
/// assert_eq!(stats.count, 5);
/// assert_eq!(stats.last, 54.0);
/// ```
#[derive(Debug, Clone)]
pub struct ManagementStore {
    inner: Inner,
}

macro_rules! delegate {
    ($self:ident, $s:ident => $body:expr) => {
        match &$self.inner {
            Inner::Chunked($s) => $body,
            Inner::Naive($s) => $body,
        }
    };
    (mut $self:ident, $s:ident => $body:expr) => {
        match &mut $self.inner {
            Inner::Chunked($s) => $body,
            Inner::Naive($s) => $body,
        }
    };
}

impl ManagementStore {
    /// Creates an empty store on the default (chunked) backend.
    pub fn new(classifier: Classifier) -> Self {
        ManagementStore::with_backend(StoreBackend::Chunked, classifier)
    }

    /// Creates an empty store on an explicit backend.
    pub fn with_backend(backend: StoreBackend, classifier: Classifier) -> Self {
        let inner = match backend {
            StoreBackend::Chunked => Inner::Chunked(ChunkedStore::new(classifier)),
            StoreBackend::Naive => Inner::Naive(NaiveStore::new(classifier)),
        };
        ManagementStore { inner }
    }

    /// Which backend this store runs on.
    pub fn backend(&self) -> StoreBackend {
        match &self.inner {
            Inner::Chunked(_) => StoreBackend::Chunked,
            Inner::Naive(_) => StoreBackend::Naive,
        }
    }

    /// The classifier in use.
    pub fn classifier(&self) -> &Classifier {
        delegate!(self, s => s.classifier())
    }

    /// Inserts one record. Re-inserting the same `(device, metric,
    /// timestamp)` replaces the value (idempotent collection retries);
    /// NaN values are dropped.
    pub fn insert(&mut self, record: Record) {
        if record.value.is_nan() {
            return;
        }
        delegate!(mut self, s => s.insert(record))
    }

    /// Inserts many records.
    pub fn insert_all(&mut self, records: impl IntoIterator<Item = Record>) {
        for r in records {
            self.insert(r);
        }
    }

    /// Total number of stored points.
    pub fn len(&self) -> usize {
        delegate!(self, s => s.len())
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        delegate!(self, s => s.is_empty())
    }

    /// All devices seen, in name order.
    pub fn devices(&self) -> impl Iterator<Item = &str> {
        let (a, b) = match &self.inner {
            Inner::Chunked(s) => (Some(s.devices()), None),
            Inner::Naive(s) => (None, Some(s.devices())),
        };
        a.into_iter().flatten().chain(b.into_iter().flatten())
    }

    /// Metrics observed on one device.
    pub fn metrics_of(&self, device: &str) -> impl Iterator<Item = &str> {
        let (a, b) = match &self.inner {
            Inner::Chunked(s) => (Some(s.metrics_of(device)), None),
            Inner::Naive(s) => (None, Some(s.metrics_of(device))),
        };
        a.into_iter().flatten().chain(b.into_iter().flatten())
    }

    /// Devices seen at a site.
    pub fn devices_at(&self, site: &str) -> impl Iterator<Item = &str> {
        let (a, b) = match &self.inner {
            Inner::Chunked(s) => (Some(s.devices_at(site)), None),
            Inner::Naive(s) => (None, Some(s.devices_at(site))),
        };
        a.into_iter().flatten().chain(b.into_iter().flatten())
    }

    /// Non-empty partitions, in name order.
    pub fn partitions(&self) -> Vec<&str> {
        delegate!(self, s => s.partitions())
    }

    /// Series keys `(device, metric)` in a partition.
    pub fn by_partition<'a>(
        &'a self,
        partition: &str,
    ) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        let (a, b) = match &self.inner {
            Inner::Chunked(s) => (Some(s.by_partition(partition)), None),
            Inner::Naive(s) => (None, Some(s.by_partition(partition))),
        };
        a.into_iter().flatten().chain(b.into_iter().flatten())
    }

    /// Sorted series keys matching a label filter (see
    /// [`LabelFilter::parse`] for the matcher syntax).
    pub fn select(&self, filter: &LabelFilter) -> Vec<SeriesKey> {
        delegate!(self, s => s.select(filter))
    }

    /// Points of one series in `[from_ms, to_ms)`, in time order.
    pub fn range(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> impl Iterator<Item = (u64, f64)> + '_ {
        let (a, b) = match &self.inner {
            Inner::Chunked(s) => (Some(s.range(device, metric, from_ms, to_ms)), None),
            Inner::Naive(s) => (None, Some(s.range(device, metric, from_ms, to_ms))),
        };
        a.into_iter().flatten().chain(b.into_iter().flatten())
    }

    /// Latest point of a series, if any. O(log n).
    pub fn latest(&self, device: &str, metric: &str) -> Option<(u64, f64)> {
        delegate!(self, s => s.latest(device, metric))
    }

    /// Aggregate statistics over `[from_ms, to_ms)`; `None` when the
    /// range holds no points.
    pub fn stats(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> Option<SeriesStats> {
        delegate!(self, s => s.stats(device, metric, from_ms, to_ms))
    }

    /// Least-squares slope of a series over `[from_ms, to_ms)`, in value
    /// units **per minute** — the level-2 trend estimate behind "disk is
    /// filling" style rules. `None` with fewer than two points or zero
    /// time spread.
    pub fn trend_per_min(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> Option<f64> {
        delegate!(self, s => s.trend_per_min(device, metric, from_ms, to_ms))
    }

    /// Windowed aggregates for every series matching `filter`,
    /// sequentially, in series-key order.
    pub fn query_windows(
        &self,
        filter: &LabelFilter,
        from_ms: u64,
        to_ms: u64,
        step_ms: u64,
        kind: AggKind,
    ) -> Vec<SeriesWindows> {
        delegate!(self, s => s.query_windows(filter, from_ms, to_ms, step_ms, kind))
    }

    /// [`query_windows`](ManagementStore::query_windows) fanned out
    /// over at most `threads` scoped worker threads; results are merged
    /// in series-key order and are byte-identical to the sequential
    /// path.
    pub fn query_windows_parallel(
        &self,
        filter: &LabelFilter,
        from_ms: u64,
        to_ms: u64,
        step_ms: u64,
        kind: AggKind,
        threads: usize,
    ) -> Vec<SeriesWindows> {
        delegate!(self, s => s.query_windows_parallel(filter, from_ms, to_ms, step_ms, kind, threads))
    }

    /// Drops every point older than `horizon_ms`, returning how many
    /// were removed.
    pub fn prune_before(&mut self, horizon_ms: u64) -> usize {
        delegate!(mut self, s => s.prune_before(horizon_ms))
    }

    /// Stored payload bytes (encoded chunks + head buffers for the
    /// chunked backend; 16 bytes/point for the naive one).
    pub fn storage_bytes(&self) -> usize {
        delegate!(self, s => s.storage_bytes())
    }

    /// Total chunks across all series; 0 on the naive backend.
    pub fn chunk_count(&self) -> usize {
        match &self.inner {
            Inner::Chunked(s) => s.chunk_count(),
            Inner::Naive(_) => 0,
        }
    }
}

impl Default for ManagementStore {
    fn default() -> Self {
        ManagementStore::new(Classifier::standard())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ManagementStore {
        let mut store = ManagementStore::default();
        store.insert_all([
            Record::new("r1", "cpu.load.1", 40.0, 0).with_site("hq"),
            Record::new("r1", "cpu.load.1", 60.0, 60_000).with_site("hq"),
            Record::new("r1", "if.1.in-octets", 100.0, 0).with_site("hq"),
            Record::new("s1", "storage.disk.used-pct", 70.0, 0).with_site("branch"),
        ]);
        store
    }

    #[test]
    fn insert_updates_all_indexes() {
        let store = sample_store();
        assert_eq!(store.len(), 4);
        assert_eq!(store.devices().collect::<Vec<_>>(), ["r1", "s1"]);
        assert_eq!(
            store.metrics_of("r1").collect::<Vec<_>>(),
            ["cpu.load.1", "if.1.in-octets"]
        );
        assert_eq!(store.devices_at("branch").collect::<Vec<_>>(), ["s1"]);
        assert_eq!(store.partitions(), ["cpu", "disk", "interface"]);
        assert_eq!(
            store.by_partition("disk").collect::<Vec<_>>(),
            [("s1", "storage.disk.used-pct")]
        );
    }

    #[test]
    fn duplicate_timestamp_replaces_value() {
        let mut store = sample_store();
        store.insert(Record::new("r1", "cpu.load.1", 99.0, 0));
        assert_eq!(store.len(), 4, "count unchanged");
        assert_eq!(
            store.range("r1", "cpu.load.1", 0, 1).next(),
            Some((0, 99.0))
        );
    }

    #[test]
    fn range_is_half_open_and_ordered() {
        let store = sample_store();
        let points: Vec<_> = store.range("r1", "cpu.load.1", 0, 60_000).collect();
        assert_eq!(points, [(0, 40.0)]);
        let all: Vec<_> = store.range("r1", "cpu.load.1", 0, u64::MAX).collect();
        assert_eq!(all, [(0, 40.0), (60_000, 60.0)]);
    }

    #[test]
    fn latest_returns_newest_point() {
        let store = sample_store();
        assert_eq!(store.latest("r1", "cpu.load.1"), Some((60_000, 60.0)));
        assert_eq!(store.latest("r1", "nope"), None);
    }

    #[test]
    fn stats_aggregate_correctly() {
        let store = sample_store();
        let s = store.stats("r1", "cpu.load.1", 0, u64::MAX).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 40.0);
        assert_eq!(s.max, 60.0);
        assert_eq!(s.mean, 50.0);
        assert_eq!(s.last, 60.0);
        assert!(store.stats("r1", "cpu.load.1", 1, 2).is_none());
    }

    #[test]
    fn prune_removes_old_points_only() {
        let mut store = sample_store();
        let removed = store.prune_before(30_000);
        assert_eq!(removed, 3);
        assert_eq!(store.len(), 1);
        assert_eq!(store.latest("r1", "cpu.load.1"), Some((60_000, 60.0)));
        assert_eq!(store.latest("s1", "storage.disk.used-pct"), None);
    }

    #[test]
    fn trend_recovers_a_linear_ramp() {
        let mut store = ManagementStore::default();
        // 2 units per minute, sampled every 30 s.
        for i in 0..10u64 {
            store.insert(Record::new("d", "storage.disk.used", i as f64, i * 30_000));
        }
        let slope = store
            .trend_per_min("d", "storage.disk.used", 0, u64::MAX)
            .unwrap();
        assert!((slope - 2.0).abs() < 1e-9, "{slope}");
    }

    #[test]
    fn trend_is_zero_for_flat_series_and_none_when_underdetermined() {
        let mut store = ManagementStore::default();
        store.insert(Record::new("d", "m", 5.0, 0));
        assert_eq!(store.trend_per_min("d", "m", 0, u64::MAX), None);
        store.insert(Record::new("d", "m", 5.0, 60_000));
        let slope = store.trend_per_min("d", "m", 0, u64::MAX).unwrap();
        assert!(slope.abs() < 1e-12);
        assert_eq!(store.trend_per_min("ghost", "m", 0, u64::MAX), None);
    }

    #[test]
    fn trend_respects_the_window() {
        let mut store = ManagementStore::default();
        // Rising then flat: windowed trends differ.
        for i in 0..5u64 {
            store.insert(Record::new("d", "m", i as f64, i * 60_000));
        }
        for i in 5..10u64 {
            store.insert(Record::new("d", "m", 4.0, i * 60_000));
        }
        let early = store.trend_per_min("d", "m", 0, 5 * 60_000).unwrap();
        let late = store.trend_per_min("d", "m", 5 * 60_000, u64::MAX).unwrap();
        assert!(early > 0.9);
        assert!(late.abs() < 1e-12);
    }

    #[test]
    fn rolling_aggregates_survive_out_of_order_and_replacement() {
        let mut store = ManagementStore::default();
        store.insert(Record::new("d", "m", 10.0, 60_000));
        store.insert(Record::new("d", "m", 30.0, 120_000));
        // Out-of-order insert.
        store.insert(Record::new("d", "m", 20.0, 0));
        let s = store.stats("d", "m", 0, u64::MAX).unwrap();
        assert_eq!(
            (s.count, s.min, s.max, s.mean, s.last),
            (3, 10.0, 30.0, 20.0, 30.0)
        );
        // Replacement at an existing timestamp (including the old max).
        store.insert(Record::new("d", "m", 5.0, 120_000));
        let s = store.stats("d", "m", 0, u64::MAX).unwrap();
        assert_eq!((s.count, s.min, s.max, s.last), (3, 5.0, 20.0, 5.0));
    }

    #[test]
    fn rolling_aggregates_survive_prune() {
        let mut store = ManagementStore::default();
        for i in 0..10u64 {
            store.insert(Record::new("d", "m", i as f64, i * 1_000));
        }
        store.prune_before(5_000);
        let s = store.stats("d", "m", 0, u64::MAX).unwrap();
        assert_eq!(
            (s.count, s.min, s.max, s.mean, s.last),
            (5, 5.0, 9.0, 7.0, 9.0)
        );
        store.prune_before(u64::MAX);
        assert!(store.stats("d", "m", 0, u64::MAX).is_none());
    }

    #[test]
    fn subrange_stats_fall_back_to_the_scan() {
        let store = sample_store();
        // [0, 60_000) excludes the last point → not the whole series.
        let s = store.stats("r1", "cpu.load.1", 0, 60_000).unwrap();
        assert_eq!((s.count, s.min, s.max, s.last), (1, 40.0, 40.0, 40.0));
    }

    #[test]
    fn empty_store_behaves() {
        let store = ManagementStore::default();
        assert!(store.is_empty());
        assert_eq!(store.partitions().len(), 0);
        assert_eq!(store.range("d", "m", 0, 10).count(), 0);
    }

    #[test]
    fn nan_is_dropped_on_both_backends() {
        for backend in [StoreBackend::Chunked, StoreBackend::Naive] {
            let mut store = ManagementStore::with_backend(backend, Classifier::standard());
            store.insert(Record::new("d", "m", f64::NAN, 0));
            assert!(store.is_empty(), "{backend:?}");
            store.insert(Record::new("d", "m", 1.0, 0));
            store.insert(Record::new("d", "m", f64::NAN, 0));
            assert_eq!(store.latest("d", "m"), Some((0, 1.0)), "{backend:?}");
        }
    }

    #[test]
    fn backends_report_their_identity_and_footprint() {
        let store = sample_store();
        assert_eq!(store.backend(), StoreBackend::Chunked);
        assert!(store.chunk_count() >= 3, "one head per series");
        assert!(store.storage_bytes() > 0);
        let mut naive = ManagementStore::with_backend(StoreBackend::Naive, Classifier::standard());
        naive.insert(Record::new("d", "m", 1.0, 0));
        assert_eq!(naive.backend(), StoreBackend::Naive);
        assert_eq!(naive.chunk_count(), 0);
        assert_eq!(naive.storage_bytes(), 16);
    }

    #[test]
    fn select_spans_both_backends_identically() {
        for backend in [StoreBackend::Chunked, StoreBackend::Naive] {
            let mut store = ManagementStore::with_backend(backend, Classifier::standard());
            store.insert_all([
                Record::new("r1", "cpu.load.1", 40.0, 0),
                Record::new("r2", "cpu.load.1", 41.0, 0),
                Record::new("r1", "storage.disk.used-pct", 70.0, 0),
            ]);
            let f = LabelFilter::parse("device=r1 & (class=cpu | class=disk)").unwrap();
            let keys = store.select(&f);
            assert_eq!(
                keys,
                [
                    ("r1".to_owned(), "cpu.load.1".to_owned()),
                    ("r1".to_owned(), "storage.disk.used-pct".to_owned())
                ],
                "{backend:?}"
            );
        }
    }

    #[test]
    fn windowed_queries_agree_across_backends_and_paths() {
        let mut chunked = ManagementStore::default();
        let mut naive = ManagementStore::with_backend(StoreBackend::Naive, Classifier::standard());
        for i in 0..300u64 {
            for dev in ["r1", "r2", "r3"] {
                let rec = Record::new(dev, "cpu.load.1", (i % 17) as f64, i * 60_000);
                chunked.insert(rec.clone());
                naive.insert(rec);
            }
        }
        let f = LabelFilter::class("cpu");
        for kind in [
            AggKind::Min,
            AggKind::Max,
            AggKind::Mean,
            AggKind::Sum,
            AggKind::Count,
            AggKind::Trend,
        ] {
            let seq = chunked.query_windows(&f, 0, u64::MAX, 30 * 60_000, kind);
            let par = chunked.query_windows_parallel(&f, 0, u64::MAX, 30 * 60_000, kind, 4);
            let spec = naive.query_windows(&f, 0, u64::MAX, 30 * 60_000, kind);
            assert_eq!(seq, par, "{kind:?} parallel parity");
            assert_eq!(seq, spec, "{kind:?} backend parity");
        }
    }
}
