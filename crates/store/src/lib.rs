//! Management-data storage for `agentgrid`.
//!
//! The classifier grid "performs parsing, classification, indexing and
//! storing data tasks" (paper §3.2), organizing collected data "in a way
//! that facilitates its distribution and analysis (data-clustering)".
//! This crate is that substrate:
//!
//! * [`Record`] — one stored observation;
//! * [`Classifier`] — partitions records into named clusters by metric
//!   prefix, so analysis tasks can be divided along partition lines;
//! * [`ManagementStore`] — an indexed time-series store with per-device /
//!   per-metric / per-partition retrieval, label-filter selection, range
//!   queries, windowed aggregation and retention. A facade over two
//!   engines: the chunk-compressed [`ChunkedStore`] (Gorilla-style
//!   delta-of-delta + XOR encoding, default) and the record-per-point
//!   [`NaiveStore`] (the executable spec both are tested against);
//! * [`ReplicatedStore`] — N-way replication with primary failover (the
//!   paper's future-work item on "storage, replication, indexing and
//!   recuperation of management data").
//!
//! # Examples
//!
//! ```
//! use agentgrid_store::{Classifier, ManagementStore, Record};
//!
//! let mut store = ManagementStore::new(Classifier::standard());
//! store.insert(Record::new("r1", "cpu.load.1", 91.0, 60_000).with_site("hq"));
//! store.insert(Record::new("r1", "if.1.in-octets", 1e6, 60_000).with_site("hq"));
//!
//! assert_eq!(store.len(), 2);
//! assert_eq!(store.partitions(), ["cpu", "interface"]);
//! assert_eq!(store.by_partition("cpu").count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunks;
mod classify;
mod index;
mod naive;
mod query;
mod record;
mod replicate;
mod store;

pub use chunks::{
    ChunkSeries, EncodeError, RollingAgg, RunVisitor, SealedChunk, DEFAULT_CHUNK_CAPACITY,
};
pub use classify::Classifier;
pub use index::{Label, LabelFilter, SeriesKey};
pub use naive::NaiveStore;
pub use query::{AggKind, SeriesStats, SeriesWindows, WindowPoint};
pub use record::Record;
pub use replicate::{ReplicaError, ReplicatedStore};
pub use store::{ChunkedStore, ManagementStore, StoreBackend};
