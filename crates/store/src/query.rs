//! Range queries: shared aggregate folds, windowed aggregators and the
//! parallel fan-out executor.
//!
//! Both store backends funnel their point streams through the fold
//! functions here, so every aggregate accumulates **in ascending
//! timestamp order with identical operation order** — float addition is
//! not associative, and bit-exact backend equivalence (plus byte-stable
//! `repro` output) depends on never combining partial sums. The
//! parallel path fans series out across scoped threads but each series
//! is still folded by the same sequential code, and results are merged
//! in series-key order — byte-identical to the sequential path by
//! construction.

use crate::index::SeriesKey;

/// Aggregate statistics over one series range (used by level-2
/// "consolidation" analyses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesStats {
    /// Number of points.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Latest value in the range.
    pub last: f64,
}

/// Folds a timestamp-ordered point stream into [`SeriesStats`]; `None`
/// when the stream is empty. This is the *only* stats accumulation loop
/// in the crate — both backends and both query paths call it.
pub(crate) fn fold_stats(points: impl Iterator<Item = (u64, f64)>) -> Option<SeriesStats> {
    let mut count = 0usize;
    let (mut min, mut max, mut sum, mut last) = (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0.0);
    for (_, v) in points {
        count += 1;
        min = min.min(v);
        max = max.max(v);
        sum += v;
        last = v;
    }
    if count == 0 {
        return None;
    }
    Some(SeriesStats {
        count,
        min,
        max,
        mean: sum / count as f64,
        last,
    })
}

/// Least-squares slope in value units **per minute** over a point
/// stream, streamed in two passes (means, then residuals); `None` with
/// fewer than two points or zero time spread. `make_iter` must yield
/// the same timestamp-ordered stream on both calls.
pub(crate) fn fold_trend<I, F>(make_iter: F) -> Option<f64>
where
    I: Iterator<Item = (u64, f64)>,
    F: Fn() -> I,
{
    let mut count = 0usize;
    let mut t0 = 0u64;
    let mut sum_x = 0.0;
    let mut sum_y = 0.0;
    for (t, y) in make_iter() {
        if count == 0 {
            t0 = t;
        }
        count += 1;
        // Work in minutes relative to the first point for conditioning.
        sum_x += (t - t0) as f64 / 60_000.0;
        sum_y += y;
    }
    if count < 2 {
        return None;
    }
    let n = count as f64;
    let mean_x = sum_x / n;
    let mean_y = sum_y / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, y) in make_iter() {
        let x = (t - t0) as f64 / 60_000.0;
        num += (x - mean_x) * (y - mean_y);
        den += (x - mean_x) * (x - mean_x);
    }
    if den == 0.0 {
        return None;
    }
    Some(num / den)
}

/// Which aggregate a windowed query computes per bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Minimum value in the window.
    Min,
    /// Maximum value in the window.
    Max,
    /// Arithmetic mean of the window.
    Mean,
    /// Forward-order sum of the window.
    Sum,
    /// Number of points in the window.
    Count,
    /// Least-squares slope (per minute) across the window.
    Trend,
}

impl AggKind {
    /// Parses an aggregator name (`min`/`max`/`mean`/`sum`/`count`/`trend`).
    pub fn parse(name: &str) -> Option<AggKind> {
        match name {
            "min" => Some(AggKind::Min),
            "max" => Some(AggKind::Max),
            "mean" | "avg" => Some(AggKind::Mean),
            "sum" => Some(AggKind::Sum),
            "count" => Some(AggKind::Count),
            "trend" => Some(AggKind::Trend),
            _ => None,
        }
    }
}

/// One windowed-aggregate bucket: window start plus the aggregate over
/// points in `[start, start + step)`. Empty windows are omitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// Window start timestamp (aligned to `from + k * step`).
    pub window_ms: u64,
    /// The aggregate value (for `Count`, the count as f64).
    pub value: f64,
}

/// Buckets a timestamp-ordered point stream into `step_ms`-wide windows
/// anchored at `from_ms` and folds each with `kind`. Windows with no
/// points produce no output row. The per-window fold order is the
/// stream order — bit-exact across backends and query paths.
pub(crate) fn windowed(
    points: impl Iterator<Item = (u64, f64)>,
    from_ms: u64,
    step_ms: u64,
    kind: AggKind,
) -> Vec<WindowPoint> {
    let mut fold = WindowFold::new(from_ms, step_ms, kind);
    for (t, v) in points {
        fold.push(t, v);
    }
    fold.finish()
}

/// Push-style windowed aggregator: the chunked backend streams decoded
/// points straight into it (no intermediate buffer), the naive backend
/// drives it through [`windowed`]. Both paths execute the identical
/// `push` sequence, so their outputs are bit-for-bit equal.
pub(crate) struct WindowFold {
    from_ms: u64,
    step_ms: u64,
    kind: AggKind,
    acc: WindowAcc,
    start: u64,
    end: u64,
    open: bool,
    out: Vec<WindowPoint>,
}

impl WindowFold {
    pub(crate) fn new(from_ms: u64, step_ms: u64, kind: AggKind) -> WindowFold {
        assert!(step_ms > 0, "window step must be positive");
        WindowFold {
            from_ms,
            step_ms,
            kind,
            acc: WindowAcc::fresh(),
            start: 0,
            end: 0,
            open: false,
            out: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, t: u64, v: f64) {
        debug_assert!(
            !self.open || t >= self.start,
            "windowed input must be time-ordered"
        );
        if !self.open || t >= self.end {
            if self.open {
                self.acc.flush(self.start, self.kind, &mut self.out);
            }
            self.start = self.from_ms + (t - self.from_ms) / self.step_ms * self.step_ms;
            self.end = self.start.saturating_add(self.step_ms);
            self.open = true;
        }
        self.acc.add(t, v, self.kind);
    }

    /// Folds a whole chunk's header summary (`count` points spanning
    /// `[start_ts, end_ts]`, with forward-fold extrema `min`/`max`)
    /// without decoding it, when the chunk fits inside a single window
    /// and the aggregate combines exactly: count adds, and min/max of a
    /// left fold over a concatenation equals the fold over the
    /// chunk-folds (ties resolve identically because combine order
    /// follows stream order). Sum/mean/trend never absorb — float
    /// addition is not associative and the accumulation order must stay
    /// the sequential one. Returns whether the summary was absorbed.
    pub(crate) fn try_absorb(
        &mut self,
        start_ts: u64,
        end_ts: u64,
        count: usize,
        min: f64,
        max: f64,
    ) -> bool {
        if !matches!(self.kind, AggKind::Min | AggKind::Max | AggKind::Count) {
            return false;
        }
        let wstart = self.from_ms + (start_ts - self.from_ms) / self.step_ms * self.step_ms;
        let wend = wstart.saturating_add(self.step_ms);
        if end_ts >= wend {
            return false; // chunk straddles a window boundary
        }
        debug_assert!(!self.open || start_ts >= self.start, "time-ordered input");
        if !self.open || start_ts >= self.end {
            if self.open {
                self.acc.flush(self.start, self.kind, &mut self.out);
            }
            self.start = wstart;
            self.end = wend;
            self.open = true;
        }
        debug_assert_eq!(
            self.start, wstart,
            "absorbed chunk must fit the open window"
        );
        match self.kind {
            AggKind::Count => self.acc.count += count,
            AggKind::Min => self.acc.min = f64::min(self.acc.min, min),
            AggKind::Max => self.acc.max = f64::max(self.acc.max, max),
            _ => unreachable!("filtered above"),
        }
        true
    }

    pub(crate) fn finish(mut self) -> Vec<WindowPoint> {
        if self.open {
            self.acc.flush(self.start, self.kind, &mut self.out);
        }
        self.out
    }
}

impl crate::chunks::RunVisitor for WindowFold {
    fn point(&mut self, ts: u64, value: f64) {
        self.push(ts, value);
    }

    fn chunk(&mut self, chunk: &crate::chunks::SealedChunk) -> bool {
        self.try_absorb(
            chunk.start_ms(),
            chunk.end_ms(),
            chunk.len(),
            chunk.min(),
            chunk.max(),
        )
    }
}

/// Incremental accumulator for one window: folds each kind with the
/// exact operation order of the whole-series folds above (so the
/// windowed path stays bit-identical across backends); only the
/// two-pass `Trend` fold buffers points, in a reused allocation.
struct WindowAcc {
    count: usize,
    min: f64,
    max: f64,
    sum: f64,
    pts: Vec<(u64, f64)>,
}

impl WindowAcc {
    fn fresh() -> WindowAcc {
        WindowAcc {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            pts: Vec::new(),
        }
    }

    #[inline]
    fn add(&mut self, t: u64, v: f64, kind: AggKind) {
        match kind {
            AggKind::Count => self.count += 1,
            AggKind::Sum => self.sum += v,
            AggKind::Min => self.min = f64::min(self.min, v),
            AggKind::Max => self.max = f64::max(self.max, v),
            AggKind::Mean => {
                self.count += 1;
                self.sum += v;
            }
            AggKind::Trend => self.pts.push((t, v)),
        }
    }

    fn flush(&mut self, start: u64, kind: AggKind, out: &mut Vec<WindowPoint>) {
        let value = match kind {
            AggKind::Count => self.count as f64,
            AggKind::Sum => self.sum,
            AggKind::Min => self.min,
            AggKind::Max => self.max,
            AggKind::Mean => self.sum / self.count as f64,
            AggKind::Trend => {
                let slope = fold_trend(|| self.pts.iter().copied());
                self.reset();
                match slope {
                    Some(slope) => slope,
                    None => return, // underdetermined window: omit the row
                }
            }
        };
        self.reset();
        out.push(WindowPoint {
            window_ms: start,
            value,
        });
    }

    fn reset(&mut self) {
        self.count = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.sum = 0.0;
        self.pts.clear();
    }
}

/// One series' result row in a multi-series query.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesWindows {
    /// The series key (`device`, `metric`).
    pub key: SeriesKey,
    /// The windowed aggregate rows, in time order.
    pub windows: Vec<WindowPoint>,
}

/// Runs `work` over every key, fanned out across at most `threads`
/// scoped worker threads on contiguous key runs, and returns results in
/// key order — the exact output of `keys.iter().map(work).collect()`,
/// byte for byte, because each item is still processed by the same
/// sequential code and the merge concatenates runs in slice order.
pub(crate) fn fan_out<K, R, F>(keys: &[K], threads: usize, work: F) -> Vec<R>
where
    K: Sync,
    R: Send,
    F: Fn(&K) -> R + Sync,
{
    let threads = threads.max(1).min(keys.len().max(1));
    if threads <= 1 || keys.len() <= 1 {
        return keys.iter().map(&work).collect();
    }
    let chunk = keys.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = keys
            .chunks(chunk)
            .map(|run| scope.spawn(|| run.iter().map(&work).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("query worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<(u64, f64)> {
        (0..10u64).map(|i| (i * 1_000, i as f64)).collect()
    }

    #[test]
    fn fold_stats_matches_hand_computation() {
        let s = fold_stats(pts().into_iter()).unwrap();
        assert_eq!(
            (s.count, s.min, s.max, s.mean, s.last),
            (10, 0.0, 9.0, 4.5, 9.0)
        );
        assert!(fold_stats(std::iter::empty()).is_none());
    }

    #[test]
    fn windowed_buckets_align_to_from() {
        let rows = windowed(pts().into_iter(), 0, 4_000, AggKind::Count);
        assert_eq!(
            rows,
            [
                WindowPoint {
                    window_ms: 0,
                    value: 4.0
                },
                WindowPoint {
                    window_ms: 4_000,
                    value: 4.0
                },
                WindowPoint {
                    window_ms: 8_000,
                    value: 2.0
                },
            ]
        );
        let rows = windowed(pts().into_iter(), 0, 4_000, AggKind::Sum);
        assert_eq!(rows[0].value, 0.0 + 1.0 + 2.0 + 3.0);
        let rows = windowed(pts().into_iter(), 0, 4_000, AggKind::Max);
        assert_eq!(rows[2].value, 9.0);
    }

    #[test]
    fn windowed_trend_recovers_slope_and_omits_underdetermined() {
        // 1 unit per second = 60 per minute.
        let rows = windowed(pts().into_iter(), 0, 5_000, AggKind::Trend);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].value - 60.0).abs() < 1e-9);
        // Single-point windows are omitted.
        let rows = windowed(pts().into_iter(), 0, 1_000, AggKind::Trend);
        assert!(rows.is_empty());
    }

    #[test]
    fn fan_out_preserves_sequential_order() {
        let keys: Vec<u32> = (0..37).collect();
        let seq: Vec<u64> = keys.iter().map(|&k| k as u64 * 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = fan_out(&keys, threads, |&k| k as u64 * 3);
            assert_eq!(par, seq, "threads={threads}");
        }
        assert!(fan_out(&Vec::<u32>::new(), 4, |&k| k).is_empty());
    }
}
