use std::fmt;

use crate::{ManagementStore, Record, SeriesStats};

/// Error raised by [`ReplicatedStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplicaError {
    /// Every replica is marked failed.
    AllReplicasDown,
    /// The replica index does not exist.
    NoSuchReplica(usize),
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::AllReplicasDown => f.write_str("all replicas are down"),
            ReplicaError::NoSuchReplica(index) => write!(f, "no replica #{index}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

/// N-way replicated [`ManagementStore`] with primary failover.
///
/// Writes go to every live replica; reads go to the lowest-numbered live
/// replica. A replica marked failed stops receiving writes; when it is
/// marked recovered it is resynchronized from a live peer, restoring the
/// invariant that all live replicas hold the same data.
///
/// # Examples
///
/// ```
/// use agentgrid_store::{Record, ReplicatedStore};
///
/// let mut store = ReplicatedStore::new(3);
/// store.insert(Record::new("d", "cpu.load.1", 10.0, 0))?;
/// store.fail(0)?;
/// store.insert(Record::new("d", "cpu.load.1", 20.0, 60_000))?;
/// // Reads fail over to replica 1, which has both points.
/// assert_eq!(store.read()?.len(), 2);
/// store.recover(0)?;
/// assert_eq!(store.replica(0)?.len(), 2); // resynced
/// # Ok::<(), agentgrid_store::ReplicaError>(())
/// ```
#[derive(Debug)]
pub struct ReplicatedStore {
    replicas: Vec<ManagementStore>,
    alive: Vec<bool>,
}

impl ReplicatedStore {
    /// Creates `n` empty replicas with the standard classifier.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one replica");
        ReplicatedStore {
            replicas: (0..n).map(|_| ManagementStore::default()).collect(),
            alive: vec![true; n],
        }
    }

    /// Number of replicas (live or not).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Number of live replicas.
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Writes a record to every live replica.
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError::AllReplicasDown`] if no replica is live
    /// (the write is lost and the caller should raise an alert).
    pub fn insert(&mut self, record: Record) -> Result<(), ReplicaError> {
        if self.live_count() == 0 {
            return Err(ReplicaError::AllReplicasDown);
        }
        for (store, alive) in self.replicas.iter_mut().zip(&self.alive) {
            if *alive {
                store.insert(record.clone());
            }
        }
        Ok(())
    }

    /// Read access to the current primary (lowest-numbered live replica).
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError::AllReplicasDown`] if no replica is live.
    pub fn read(&self) -> Result<&ManagementStore, ReplicaError> {
        self.replicas
            .iter()
            .zip(&self.alive)
            .find(|(_, alive)| **alive)
            .map(|(store, _)| store)
            .ok_or(ReplicaError::AllReplicasDown)
    }

    /// Direct access to one replica (live or not), for tests and audits.
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError::NoSuchReplica`] for an out-of-range index.
    pub fn replica(&self, index: usize) -> Result<&ManagementStore, ReplicaError> {
        self.replicas
            .get(index)
            .ok_or(ReplicaError::NoSuchReplica(index))
    }

    /// Marks a replica failed.
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError::NoSuchReplica`] for an out-of-range index.
    pub fn fail(&mut self, index: usize) -> Result<(), ReplicaError> {
        match self.alive.get_mut(index) {
            Some(flag) => {
                *flag = false;
                Ok(())
            }
            None => Err(ReplicaError::NoSuchReplica(index)),
        }
    }

    /// Marks a replica recovered, resynchronizing it from the current
    /// primary (if any other replica is live).
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError::NoSuchReplica`] for an out-of-range index.
    pub fn recover(&mut self, index: usize) -> Result<(), ReplicaError> {
        if index >= self.replicas.len() {
            return Err(ReplicaError::NoSuchReplica(index));
        }
        // Resync from the first other live replica, if one exists.
        let source = self
            .replicas
            .iter()
            .zip(&self.alive)
            .enumerate()
            .find(|(i, (_, alive))| *i != index && **alive)
            .map(|(_, (store, _))| store.clone());
        if let Some(source) = source {
            self.replicas[index] = source;
        }
        self.alive[index] = true;
        Ok(())
    }

    /// Whether all live replicas agree on the number of stored points
    /// (cheap consistency probe used by integration tests).
    pub fn is_consistent(&self) -> bool {
        let mut lens = self
            .replicas
            .iter()
            .zip(&self.alive)
            .filter(|(_, alive)| **alive)
            .map(|(store, _)| store.len());
        match lens.next() {
            None => true,
            Some(first) => lens.all(|l| l == first),
        }
    }

    /// Convenience: stats from the primary.
    ///
    /// # Errors
    ///
    /// Returns [`ReplicaError::AllReplicasDown`] if no replica is live.
    pub fn stats(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> Result<Option<SeriesStats>, ReplicaError> {
        Ok(self.read()?.stats(device, metric, from_ms, to_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: u64) -> Record {
        Record::new("d", "cpu.load.1", t as f64, t)
    }

    #[test]
    #[should_panic(expected = "need at least one replica")]
    fn zero_replicas_rejected() {
        ReplicatedStore::new(0);
    }

    #[test]
    fn writes_reach_all_live_replicas() {
        let mut store = ReplicatedStore::new(3);
        store.insert(record(0)).unwrap();
        for i in 0..3 {
            assert_eq!(store.replica(i).unwrap().len(), 1);
        }
        assert!(store.is_consistent());
    }

    #[test]
    fn failed_replica_misses_writes_until_recovered() {
        let mut store = ReplicatedStore::new(2);
        store.insert(record(0)).unwrap();
        store.fail(1).unwrap();
        store.insert(record(1)).unwrap();
        assert_eq!(store.replica(0).unwrap().len(), 2);
        assert_eq!(store.replica(1).unwrap().len(), 1, "missed while down");
        store.recover(1).unwrap();
        assert_eq!(store.replica(1).unwrap().len(), 2, "resynced");
        assert!(store.is_consistent());
    }

    #[test]
    fn reads_fail_over_to_next_live_replica() {
        let mut store = ReplicatedStore::new(2);
        store.insert(record(0)).unwrap();
        store.fail(0).unwrap();
        assert_eq!(store.read().unwrap().len(), 1);
        assert_eq!(store.live_count(), 1);
    }

    #[test]
    fn all_down_rejects_reads_and_writes() {
        let mut store = ReplicatedStore::new(1);
        store.fail(0).unwrap();
        assert_eq!(store.insert(record(0)), Err(ReplicaError::AllReplicasDown));
        assert!(matches!(store.read(), Err(ReplicaError::AllReplicasDown)));
    }

    #[test]
    fn recover_without_live_peer_keeps_old_data() {
        let mut store = ReplicatedStore::new(1);
        store.insert(record(0)).unwrap();
        store.fail(0).unwrap();
        store.recover(0).unwrap();
        assert_eq!(store.read().unwrap().len(), 1);
    }

    #[test]
    fn out_of_range_indexes_error() {
        let mut store = ReplicatedStore::new(1);
        assert_eq!(store.fail(5), Err(ReplicaError::NoSuchReplica(5)));
        assert_eq!(store.recover(7), Err(ReplicaError::NoSuchReplica(7)));
        assert!(store.replica(9).is_err());
    }

    #[test]
    fn stats_read_from_primary() {
        let mut store = ReplicatedStore::new(2);
        store.insert(record(0)).unwrap();
        store.insert(record(60_000)).unwrap();
        let stats = store
            .stats("d", "cpu.load.1", 0, u64::MAX)
            .unwrap()
            .unwrap();
        assert_eq!(stats.count, 2);
    }
}
