use std::fmt;

use serde::{Deserialize, Serialize};

/// One stored observation: the classifier grid's unit of data.
///
/// # Examples
///
/// ```
/// use agentgrid_store::Record;
/// let r = Record::new("srv-1", "storage.disk.used-pct", 83.0, 120_000).with_site("hq");
/// assert_eq!(r.device, "srv-1");
/// assert_eq!(r.site, "hq");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Device the value came from.
    pub device: String,
    /// Metric name (dot-separated).
    pub metric: String,
    /// Observed value.
    pub value: f64,
    /// Collection timestamp, milliseconds since scenario start.
    pub timestamp_ms: u64,
    /// Site the device belongs to (defaults to `"default"`).
    pub site: String,
}

impl Record {
    /// Creates a record on the default site.
    pub fn new(
        device: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
        timestamp_ms: u64,
    ) -> Self {
        Record {
            device: device.into(),
            metric: metric.into(),
            value,
            timestamp_ms,
            site: "default".to_owned(),
        }
    }

    /// Sets the site (builder style).
    pub fn with_site(mut self, site: impl Into<String>) -> Self {
        self.site = site.into();
        self
    }

    /// The series this record belongs to: `(device, metric)`.
    pub fn series_key(&self) -> (&str, &str) {
        (&self.device, &self.metric)
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} ms] {}/{} {} = {}",
            self.timestamp_ms, self.site, self.device, self.metric, self.value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_site() {
        let r = Record::new("d", "m", 1.0, 2).with_site("s");
        assert_eq!(r.site, "s");
        assert_eq!(Record::new("d", "m", 1.0, 2).site, "default");
    }

    #[test]
    fn series_key_pairs_device_and_metric() {
        let r = Record::new("d", "m", 1.0, 2);
        assert_eq!(r.series_key(), ("d", "m"));
    }

    #[test]
    fn display_is_informative() {
        let r = Record::new("d", "m", 1.5, 2).with_site("s");
        assert_eq!(r.to_string(), "[2 ms] s/d m = 1.5");
    }
}
