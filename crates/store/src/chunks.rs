//! Compressed time-series chunks: delta-of-delta timestamps + XOR values.
//!
//! One series is a run of immutable [`SealedChunk`]s (Gorilla-style bit
//! encoding, fixed point capacity) followed by one small uncompressed
//! head buffer that absorbs in-order appends and is sealed when full.
//! Out-of-order upserts decode the owning chunk, splice the point in and
//! re-encode, splitting the chunk when it outgrows its capacity — a
//! deterministic, single-writer discipline, so same-seed runs produce
//! byte-identical chunk layouts.
//!
//! The encoding is bit-lossless for every non-NaN `f64` (`-0.0`,
//! subnormals and infinities round-trip exactly); NaN is rejected at
//! encode time because the store's replace-on-equal-timestamp and
//! min/max semantics are undefined for it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default number of points per sealed chunk. 256 keeps the decode
/// working set inside L1 while amortizing per-chunk headers to well
/// under a bit per sample.
pub const DEFAULT_CHUNK_CAPACITY: usize = 256;

/// Error raised when a value cannot be chunk-encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// NaN values are not storable (comparison and replace semantics
    /// would be undefined).
    NotANumber,
    /// Timestamps must be strictly increasing within a chunk.
    UnsortedTimestamps,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::NotANumber => f.write_str("NaN values cannot be encoded"),
            EncodeError::UnsortedTimestamps => {
                f.write_str("chunk timestamps must be strictly increasing")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Bit-level writer over a growing byte buffer (MSB-first within bytes).
#[derive(Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the last byte (0..8; 0 means byte-aligned).
    used: u32,
}

impl BitWriter {
    fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("byte pushed above");
            *last |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Writes the low `count` bits of `value`, most significant first.
    fn write_bits(&mut self, value: u64, count: u32) {
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Bit-level reader over an encoded byte slice.
#[derive(Debug)]
/// MSB-first reader over the encoded stream, buffered a word at a time
/// so the per-point decode loop never touches the byte slice more than
/// once per eight bits.
struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next byte to load into `buf`.
    next: usize,
    /// Unread bits, MSB-aligned.
    buf: u64,
    /// Number of valid bits in `buf`.
    avail: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        let mut reader = BitReader {
            bytes,
            next: 0,
            buf: 0,
            avail: 0,
        };
        reader.refill();
        reader
    }

    #[inline]
    fn refill(&mut self) {
        // Hot path: one aligned 32-bit load restores the `avail >= 32`
        // invariant the decoders rely on.
        if self.avail <= 32 && self.next + 4 <= self.bytes.len() {
            let word: [u8; 4] = self.bytes[self.next..self.next + 4]
                .try_into()
                .expect("four bytes");
            self.buf |= u64::from(u32::from_be_bytes(word)) << (32 - self.avail);
            self.avail += 32;
            self.next += 4;
            return;
        }
        // Tail of the stream: byte at a time.
        while self.avail <= 56 && self.next < self.bytes.len() {
            self.buf |= u64::from(self.bytes[self.next]) << (56 - self.avail);
            self.avail += 8;
            self.next += 1;
        }
    }

    /// The next (up to) 64 bits of the stream, MSB-aligned, without
    /// consuming them. At least 32 bits are valid while unread bytes
    /// remain (the invariant `consume` maintains).
    #[inline]
    fn peek(&self) -> u64 {
        self.buf
    }

    /// Discards `count` already-peeked bits (`count <= avail`).
    #[inline]
    fn consume(&mut self, count: u32) {
        debug_assert!(count <= self.avail, "bit stream exhausted");
        self.buf <<= count;
        self.avail -= count;
        if self.avail < 32 {
            self.refill();
        }
    }

    /// Reads up to 32 bits in one buffered step.
    #[inline]
    fn read_chunk(&mut self, count: u32) -> u64 {
        debug_assert!((1..=32).contains(&count));
        if self.avail < count {
            self.refill();
        }
        debug_assert!(self.avail >= count, "bit stream exhausted");
        let out = self.buf >> (64 - count);
        self.consume(count);
        out
    }

    #[inline]
    fn read_bits(&mut self, count: u32) -> u64 {
        if count > 32 {
            let hi = self.read_chunk(count - 32);
            return (hi << 32) | self.read_chunk(32);
        }
        self.read_chunk(count)
    }
}

/// Maps a signed delta-of-delta onto an unsigned zig-zag code so small
/// magnitudes of either sign take few bits.
fn zigzag(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

fn unzigzag(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

/// One immutable compressed chunk: a strictly-increasing timestamp run
/// with its values, Gorilla-encoded.
///
/// Layout: 8-byte first timestamp, 8-byte first value (raw bits), then
/// per point a delta-of-delta timestamp code and an XOR value code.
/// `end_ms` and `last_value` are kept in the header so range queries can
/// skip chunks and `latest` never decodes; `min`/`max` are the
/// forward-fold extrema, letting windowed min/max/count queries absorb
/// a wholly-covered chunk without decoding it.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedChunk {
    /// Number of points in the chunk.
    count: u32,
    /// Timestamp of the first point.
    start_ms: u64,
    /// Timestamp of the last point.
    end_ms: u64,
    /// Value of the last point (for O(1) `latest`).
    last_value: f64,
    /// Minimum value, folded in timestamp order.
    min: f64,
    /// Maximum value, folded in timestamp order.
    max: f64,
    /// The encoded stream.
    data: Vec<u8>,
}

impl SealedChunk {
    /// Encodes a sorted, strictly-increasing run of points.
    ///
    /// # Errors
    ///
    /// [`EncodeError::NotANumber`] if any value is NaN;
    /// [`EncodeError::UnsortedTimestamps`] if timestamps are not
    /// strictly increasing. Empty input is rejected as unsorted.
    pub fn try_encode(points: &[(u64, f64)]) -> Result<SealedChunk, EncodeError> {
        let Some(&(first_ts, first_val)) = points.first() else {
            return Err(EncodeError::UnsortedTimestamps);
        };
        if points.iter().any(|(_, v)| v.is_nan()) {
            return Err(EncodeError::NotANumber);
        }
        if points.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(EncodeError::UnsortedTimestamps);
        }
        let mut w = BitWriter::default();
        w.write_bits(first_ts, 64);
        w.write_bits(first_val.to_bits(), 64);
        let mut prev_ts = first_ts;
        let mut prev_delta: u64 = 0;
        let mut prev_bits = first_val.to_bits();
        // Previous XOR window: (leading zeros, meaningful length).
        let mut window: Option<(u32, u32)> = None;
        for &(ts, value) in &points[1..] {
            let delta = ts - prev_ts;
            let dod = delta as i128 - prev_delta as i128;
            let zz = zigzag(dod);
            // Delta-of-delta buckets, Gorilla-style with a 64-bit raw
            // delta escape so any u64 timestamp pair encodes.
            if dod == 0 {
                w.write_bit(false);
            } else if zz < (1 << 7) {
                w.write_bits(0b10, 2);
                w.write_bits(zz as u64, 7);
            } else if zz < (1 << 9) {
                w.write_bits(0b110, 3);
                w.write_bits(zz as u64, 9);
            } else if zz < (1 << 12) {
                w.write_bits(0b1110, 4);
                w.write_bits(zz as u64, 12);
            } else if zz < (1 << 32) {
                w.write_bits(0b11110, 5);
                w.write_bits(zz as u64, 32);
            } else {
                w.write_bits(0b11111, 5);
                w.write_bits(delta, 64);
            }
            prev_delta = delta;
            prev_ts = ts;
            // XOR value encoding.
            let bits = value.to_bits();
            let xor = bits ^ prev_bits;
            prev_bits = bits;
            if xor == 0 {
                w.write_bit(false);
            } else {
                w.write_bit(true);
                let leading = xor.leading_zeros().min(31);
                let meaningful = 64 - leading - xor.trailing_zeros();
                let fits = window
                    .map(|(wl, wm)| leading >= wl && wl + wm >= leading + meaningful)
                    .unwrap_or(false);
                if fits {
                    let (wl, wm) = window.expect("fits implies a window");
                    w.write_bit(false);
                    w.write_bits(xor >> (64 - wl - wm), wm);
                } else {
                    w.write_bit(true);
                    w.write_bits(leading as u64, 5);
                    // meaningful is 1..=64; store len-1 in 6 bits.
                    w.write_bits((meaningful - 1) as u64, 6);
                    w.write_bits(xor >> (64 - leading - meaningful), meaningful);
                    window = Some((leading, meaningful));
                }
            }
        }
        let &(end_ms, last_value) = points.last().expect("non-empty checked above");
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, v) in points {
            min = f64::min(min, v);
            max = f64::max(max, v);
        }
        Ok(SealedChunk {
            count: points.len() as u32,
            start_ms: first_ts,
            end_ms,
            last_value,
            min,
            max,
            data: w.into_bytes(),
        })
    }

    /// Decodes every point, appending to `out` in timestamp order.
    pub fn decode_into(&self, out: &mut Vec<(u64, f64)>) {
        out.reserve(self.count as usize);
        let mut decoder = ChunkDecoder::new(self);
        while let Some(point) = decoder.next_point() {
            out.push(point);
        }
    }

    /// Decodes into a fresh vector.
    pub fn decode(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        self.decode_into(&mut out);
        out
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the chunk holds no points (never true for an encoded one).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// First timestamp.
    pub fn start_ms(&self) -> u64 {
        self.start_ms
    }

    /// Last timestamp.
    pub fn end_ms(&self) -> u64 {
        self.end_ms
    }

    /// Minimum value (forward-fold order).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum value (forward-fold order).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Encoded payload size in bytes (header fields excluded).
    pub fn encoded_bytes(&self) -> usize {
        self.data.len()
    }
}

fn apply_dod(prev_delta: u64, zz: u64) -> u64 {
    (prev_delta as i128 + unzigzag(zz as u128)) as u64
}

/// Streaming decoder over one sealed chunk: yields points one at a
/// time without materializing a buffer. The control codes are decoded
/// by peeking a buffered word and counting leading ones, so the hot
/// per-point path takes a handful of shifts instead of bit-at-a-time
/// reads — this is what makes compressed range scans beat a B-tree
/// walk over raw points.
struct ChunkDecoder<'a> {
    r: BitReader<'a>,
    remaining: u32,
    ts: u64,
    delta: u64,
    bits: u64,
    window: (u32, u32),
    started: bool,
}

impl<'a> ChunkDecoder<'a> {
    fn new(chunk: &'a SealedChunk) -> Self {
        ChunkDecoder {
            r: BitReader::new(&chunk.data),
            remaining: chunk.count,
            ts: 0,
            delta: 0,
            bits: 0,
            window: (0, 0),
            started: false,
        }
    }

    #[inline]
    fn next_point(&mut self) -> Option<(u64, f64)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if !self.started {
            self.started = true;
            self.ts = self.r.read_bits(64);
            self.bits = self.r.read_bits(64);
            return Some((self.ts, f64::from_bits(self.bits)));
        }
        // Timestamp: '0' | '10'+7 | '110'+9 | '1110'+12 | '11110'+32
        // zig-zag dod bits | '11111'+64 raw delta. The run of leading
        // ones is the bucket index.
        let w = self.r.peek();
        let ones = w.leading_ones().min(5);
        self.delta = match ones {
            0 => {
                self.r.consume(1);
                self.delta
            }
            5 => {
                self.r.consume(5);
                self.r.read_bits(64)
            }
            4 => {
                self.r.consume(5);
                apply_dod(self.delta, self.r.read_chunk(32))
            }
            _ => {
                const WIDTH: [u32; 4] = [0, 7, 9, 12];
                let width = WIDTH[ones as usize];
                let code = (w << (ones + 1)) >> (64 - width);
                self.r.consume(ones + 1 + width);
                apply_dod(self.delta, code)
            }
        };
        self.ts = self.ts.wrapping_add(self.delta);
        // Value: '0' identical | '10' reuse window | '11'+5-bit
        // leading+6-bit (len-1) header, then the meaningful XOR bits.
        let w = self.r.peek();
        if w >> 63 == 1 {
            let (leading, meaningful) = if w >> 62 == 0b11 {
                let leading = ((w >> 57) & 0x1F) as u32;
                let meaningful = ((w >> 51) & 0x3F) as u32 + 1;
                self.r.consume(13);
                self.window = (leading, meaningful);
                self.window
            } else {
                self.r.consume(2);
                self.window
            };
            let xor = self.r.read_bits(meaningful) << (64 - leading - meaningful);
            self.bits ^= xor;
        } else {
            self.r.consume(1);
        }
        Some((self.ts, f64::from_bits(self.bits)))
    }
}

/// Rolling whole-series aggregates, accumulated in ascending-timestamp
/// order so they are bit-for-bit identical to a fresh forward scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollingAgg {
    /// Number of points.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Forward-order sum.
    pub sum: f64,
}

impl RollingAgg {
    /// The empty fold state.
    pub fn empty() -> Self {
        RollingAgg {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Folds in one value appended after every accumulated point.
    pub fn fold(&mut self, value: f64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
    }
}

/// One series as stored by the chunked backend: sealed chunks in
/// timestamp order, then the uncompressed head buffer (every head
/// timestamp is greater than the last sealed timestamp).
///
/// Whole-series aggregates are cached lazily: the in-order append path
/// folds into the cache, while out-of-order upserts, replacements and
/// prunes merely *invalidate* it — the re-fold over the surviving
/// suffix happens on the next [`rolling_agg`](ChunkSeries::rolling_agg)
/// call, not eagerly per mutation (a burst of prunes costs one refold,
/// not one per prune).
#[derive(Debug)]
pub struct ChunkSeries {
    capacity: usize,
    sealed: Vec<SealedChunk>,
    head: Vec<(u64, f64)>,
    count: usize,
    agg: OnceLock<RollingAgg>,
    /// Lazy aggregate re-folds performed (observability + regression
    /// tests pinning the no-eager-rescan behavior).
    refolds: AtomicU64,
}

impl Clone for ChunkSeries {
    fn clone(&self) -> Self {
        ChunkSeries {
            capacity: self.capacity,
            sealed: self.sealed.clone(),
            head: self.head.clone(),
            count: self.count,
            agg: self.agg.clone(),
            refolds: AtomicU64::new(self.refolds.load(Ordering::Relaxed)),
        }
    }
}

impl ChunkSeries {
    /// Creates an empty series with the given chunk capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (a split must produce two non-empty
    /// halves).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "chunk capacity must be at least 2");
        // Pre-seed the cache so a pure append run folds incrementally
        // from the start and never pays a refold.
        let agg = OnceLock::new();
        agg.set(RollingAgg::empty()).expect("fresh lock");
        ChunkSeries {
            capacity,
            sealed: Vec::new(),
            head: Vec::new(),
            count: 0,
            agg,
            refolds: AtomicU64::new(0),
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of chunks (sealed plus the head buffer when non-empty).
    pub fn chunk_count(&self) -> usize {
        self.sealed.len() + usize::from(!self.head.is_empty())
    }

    /// Encoded bytes across sealed chunks plus the raw head buffer.
    pub fn storage_bytes(&self) -> usize {
        self.sealed
            .iter()
            .map(SealedChunk::encoded_bytes)
            .sum::<usize>()
            + self.head.len() * std::mem::size_of::<(u64, f64)>()
    }

    /// Lazy aggregate re-folds performed so far.
    pub fn refolds(&self) -> u64 {
        self.refolds.load(Ordering::Relaxed)
    }

    fn last_ts(&self) -> Option<u64> {
        if let Some(&(ts, _)) = self.head.last() {
            return Some(ts);
        }
        self.sealed.last().map(|c| c.end_ms)
    }

    /// First (oldest) timestamp.
    pub fn first_ts(&self) -> Option<u64> {
        if let Some(chunk) = self.sealed.first() {
            return Some(chunk.start_ms);
        }
        self.head.first().map(|&(ts, _)| ts)
    }

    /// Latest point, O(1): the head's last entry or the last sealed
    /// chunk's header.
    pub fn latest(&self) -> Option<(u64, f64)> {
        if let Some(&last) = self.head.last() {
            return Some(last);
        }
        self.sealed.last().map(|c| (c.end_ms, c.last_value))
    }

    fn seal_head(&mut self) {
        let chunk = SealedChunk::try_encode(&self.head)
            .expect("head is sorted, strictly increasing and NaN-free");
        self.sealed.push(chunk);
        self.head.clear();
    }

    /// Inserts or replaces the point at `ts`. Returns `true` when a new
    /// point was added, `false` when an existing timestamp's value was
    /// replaced.
    ///
    /// NaN values must be filtered by the caller (the store facade
    /// rejects them); they would poison the encoded stream.
    pub fn upsert(&mut self, ts: u64, value: f64) -> bool {
        debug_assert!(!value.is_nan(), "NaN must be rejected by the caller");
        // Fast path: strictly-newer append.
        if self.last_ts().is_none_or(|last| ts > last) {
            self.head.push((ts, value));
            self.count += 1;
            if let Some(agg) = self.agg.get_mut() {
                agg.fold(value);
            }
            if self.head.len() >= self.capacity {
                self.seal_head();
            }
            return true;
        }
        // Out-of-order or replacement: find the owning region.
        let sealed_end = self.sealed.last().map(|c| c.end_ms);
        if sealed_end.is_none_or(|end| ts > end) {
            // Belongs to the head buffer.
            let added = match self.head.binary_search_by_key(&ts, |&(t, _)| t) {
                Ok(i) => {
                    self.head[i].1 = value;
                    false
                }
                Err(i) => {
                    self.head.insert(i, (ts, value));
                    self.count += 1;
                    true
                }
            };
            self.agg.take();
            if self.head.len() >= self.capacity {
                self.seal_head();
            }
            return added;
        }
        // Belongs to a sealed chunk: the first whose end covers ts
        // (ts <= end always exists here); fall back to chunk 0 for
        // points older than everything stored.
        let idx = self.sealed.partition_point(|c| c.end_ms < ts);
        let mut points = self.sealed[idx].decode();
        let added = match points.binary_search_by_key(&ts, |&(t, _)| t) {
            Ok(i) => {
                points[i].1 = value;
                false
            }
            Err(i) => {
                points.insert(i, (ts, value));
                self.count += 1;
                true
            }
        };
        self.agg.take();
        if points.len() > self.capacity {
            // Deterministic split at the midpoint.
            let right = points.split_off(points.len() / 2);
            self.sealed[idx] =
                SealedChunk::try_encode(&points).expect("decoded run stays sorted and NaN-free");
            let right_chunk =
                SealedChunk::try_encode(&right).expect("decoded run stays sorted and NaN-free");
            self.sealed.insert(idx + 1, right_chunk);
        } else {
            self.sealed[idx] =
                SealedChunk::try_encode(&points).expect("decoded run stays sorted and NaN-free");
        }
        added
    }

    /// Drops every point with timestamp `< horizon_ms`; returns how many
    /// were removed. Whole chunks in the past are dropped without
    /// decoding; at most one boundary chunk is re-encoded, and a
    /// boundary runt merges into its successor when the pair fits one
    /// chunk. The aggregate cache is invalidated, not recomputed — see
    /// the type-level note.
    pub fn prune_before(&mut self, horizon_ms: u64) -> usize {
        let mut removed = 0;
        // Whole sealed chunks strictly before the horizon.
        let drop_n = self.sealed.partition_point(|c| c.end_ms < horizon_ms);
        for chunk in self.sealed.drain(..drop_n) {
            removed += chunk.len();
        }
        // Boundary chunk straddling the horizon.
        if let Some(first) = self.sealed.first() {
            if first.start_ms < horizon_ms {
                let mut points = first.decode();
                let cut = points.partition_point(|&(t, _)| t < horizon_ms);
                removed += cut;
                points.drain(..cut);
                // A runt merges into its successor when the pair fits.
                let merge_with_next = points.len() < self.capacity / 4
                    && self
                        .sealed
                        .get(1)
                        .is_some_and(|next| points.len() + next.len() <= self.capacity);
                if merge_with_next {
                    self.sealed[1].decode_into(&mut points);
                    self.sealed.remove(0);
                }
                if points.is_empty() {
                    self.sealed.remove(0);
                } else {
                    self.sealed[0] = SealedChunk::try_encode(&points)
                        .expect("decoded run stays sorted and NaN-free");
                }
            }
        }
        // Head prefix.
        if self.sealed.is_empty() {
            let cut = self.head.partition_point(|&(t, _)| t < horizon_ms);
            removed += cut;
            self.head.drain(..cut);
        }
        if removed > 0 {
            self.count -= removed;
            self.agg.take();
        }
        removed
    }

    /// Whole-series rolling aggregates: O(1) after an in-order append
    /// run; re-folded lazily (forward scan over the surviving points)
    /// after an out-of-order upsert, replacement or prune invalidated
    /// the cache.
    pub fn rolling_agg(&self) -> RollingAgg {
        *self.agg.get_or_init(|| {
            self.refolds.fetch_add(1, Ordering::Relaxed);
            let mut agg = RollingAgg::empty();
            self.for_each_in_range(0, u64::MAX, |_, v| agg.fold(v));
            agg
        })
    }

    /// Points in `[from_ms, to_ms)`, in timestamp order. Sealed chunks
    /// wholly outside the window are skipped without decoding.
    pub fn iter_range(&self, from_ms: u64, to_ms: u64) -> RangeIter<'_> {
        let first_chunk = self.sealed.partition_point(|c| c.end_ms < from_ms);
        let head_start = self.head.partition_point(|&(t, _)| t < from_ms);
        RangeIter {
            series: self,
            from_ms,
            to_ms,
            chunk_idx: first_chunk,
            buf: Vec::new(),
            buf_pos: 0,
            in_head: false,
            head_pos: head_start,
        }
    }

    /// Streams every point in `[from_ms, to_ms)` into `visit`, in
    /// timestamp order — the same stream as
    /// [`iter_range`](ChunkSeries::iter_range), but decoded straight
    /// into the callback with no intermediate buffer and no per-point
    /// bounds checks on chunks that lie wholly inside the window. This
    /// is the hot path behind windowed range queries.
    pub fn for_each_in_range(&self, from_ms: u64, to_ms: u64, visit: impl FnMut(u64, f64)) {
        struct Points<F>(F);
        impl<F: FnMut(u64, f64)> RunVisitor for Points<F> {
            fn point(&mut self, ts: u64, value: f64) {
                (self.0)(ts, value);
            }
        }
        self.for_each_run(from_ms, to_ms, &mut Points(visit));
    }

    /// Like [`for_each_in_range`](ChunkSeries::for_each_in_range), but
    /// offers every sealed chunk lying wholly inside `[from_ms, to_ms)`
    /// to [`RunVisitor::chunk`] first: when it returns `true` the chunk
    /// is consumed via its header summary and never decoded. Windowed
    /// min/max/count queries use this to skip decompression entirely
    /// for interior chunks.
    pub fn for_each_run(&self, from_ms: u64, to_ms: u64, sink: &mut impl RunVisitor) {
        let first_chunk = self.sealed.partition_point(|c| c.end_ms < from_ms);
        for chunk in &self.sealed[first_chunk..] {
            if chunk.start_ms() >= to_ms {
                break;
            }
            if chunk.start_ms() >= from_ms && chunk.end_ms() < to_ms {
                if sink.chunk(chunk) {
                    continue;
                }
                let mut decoder = ChunkDecoder::new(chunk);
                while let Some((t, v)) = decoder.next_point() {
                    sink.point(t, v);
                }
            } else {
                let mut decoder = ChunkDecoder::new(chunk);
                while let Some((t, v)) = decoder.next_point() {
                    if t < from_ms {
                        continue;
                    }
                    if t >= to_ms {
                        break;
                    }
                    sink.point(t, v);
                }
            }
        }
        let head_start = self.head.partition_point(|&(t, _)| t < from_ms);
        for &(t, v) in &self.head[head_start..] {
            if t >= to_ms {
                break;
            }
            sink.point(t, v);
        }
    }
}

/// Receiver for [`ChunkSeries::for_each_run`]: decoded in-range points
/// stream into [`point`](RunVisitor::point); a sealed chunk lying
/// wholly inside the range is first offered to
/// [`chunk`](RunVisitor::chunk), which may consume it via its header
/// summary (count/min/max) by returning `true`.
pub trait RunVisitor {
    /// One decoded point inside the queried range, in timestamp order.
    fn point(&mut self, ts: u64, value: f64);

    /// Offered a chunk wholly inside the range; return `true` to
    /// consume it without decoding. The default never absorbs.
    fn chunk(&mut self, chunk: &SealedChunk) -> bool {
        let _ = chunk;
        false
    }
}

/// Iterator over one series' points inside a half-open window.
///
/// Decodes one sealed chunk at a time into an internal buffer, then
/// walks the head slice; points stream in strictly increasing timestamp
/// order.
#[derive(Debug)]
pub struct RangeIter<'a> {
    series: &'a ChunkSeries,
    from_ms: u64,
    to_ms: u64,
    chunk_idx: usize,
    buf: Vec<(u64, f64)>,
    buf_pos: usize,
    in_head: bool,
    head_pos: usize,
}

impl Iterator for RangeIter<'_> {
    type Item = (u64, f64);

    fn next(&mut self) -> Option<(u64, f64)> {
        loop {
            if self.in_head {
                let &(ts, v) = self.series.head.get(self.head_pos)?;
                if ts >= self.to_ms {
                    return None;
                }
                self.head_pos += 1;
                return Some((ts, v));
            }
            if self.buf_pos < self.buf.len() {
                let (ts, v) = self.buf[self.buf_pos];
                if ts >= self.to_ms {
                    return None;
                }
                self.buf_pos += 1;
                return Some((ts, v));
            }
            match self.series.sealed.get(self.chunk_idx) {
                Some(chunk) if chunk.start_ms < self.to_ms => {
                    self.buf.clear();
                    chunk.decode_into(&mut self.buf);
                    self.buf_pos = self.buf.partition_point(|&(t, _)| t < self.from_ms);
                    self.chunk_idx += 1;
                }
                _ => {
                    self.in_head = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regular(n: usize) -> Vec<(u64, f64)> {
        (0..n)
            .map(|i| (i as u64 * 60_000, 40.0 + (i % 7) as f64))
            .collect()
    }

    #[test]
    fn round_trip_regular_series() {
        let points = regular(500);
        let chunk = SealedChunk::try_encode(&points).unwrap();
        assert_eq!(chunk.decode(), points);
        assert_eq!(chunk.len(), 500);
        assert_eq!(chunk.start_ms(), 0);
        assert_eq!(chunk.end_ms(), 499 * 60_000);
    }

    #[test]
    fn round_trip_adversarial_bits() {
        let points = vec![
            (0, -0.0),
            (1, 0.0),
            (2, f64::MIN_POSITIVE / 2.0), // subnormal
            (3, f64::INFINITY),
            (4, f64::NEG_INFINITY),
            (5, f64::MAX),
            (u64::MAX - 1, f64::MIN),
        ];
        let chunk = SealedChunk::try_encode(&points).unwrap();
        let decoded = chunk.decode();
        assert_eq!(decoded.len(), points.len());
        for ((t0, v0), (t1, v1)) in points.iter().zip(&decoded) {
            assert_eq!(t0, t1);
            assert_eq!(v0.to_bits(), v1.to_bits(), "bit-exact round trip");
        }
    }

    #[test]
    fn nan_and_unsorted_are_rejected() {
        assert_eq!(
            SealedChunk::try_encode(&[(0, f64::NAN)]),
            Err(EncodeError::NotANumber)
        );
        assert_eq!(
            SealedChunk::try_encode(&[(5, 1.0), (5, 2.0)]),
            Err(EncodeError::UnsortedTimestamps)
        );
        assert_eq!(
            SealedChunk::try_encode(&[]),
            Err(EncodeError::UnsortedTimestamps)
        );
    }

    #[test]
    fn regular_cadence_compresses_hard() {
        // Integer-valued gauge at a fixed cadence: the workload SNMP
        // actually produces. Must beat 4 bytes/sample comfortably.
        let points: Vec<(u64, f64)> = (0..256)
            .map(|i| (i as u64 * 60_000, ((i * 13) % 100) as f64))
            .collect();
        let chunk = SealedChunk::try_encode(&points).unwrap();
        let bps = chunk.encoded_bytes() as f64 / points.len() as f64;
        assert!(bps < 4.0, "bytes/sample {bps}");
    }

    #[test]
    fn series_appends_seal_and_iterate() {
        let mut s = ChunkSeries::new(64);
        for (ts, v) in regular(200) {
            assert!(s.upsert(ts, v));
        }
        assert_eq!(s.len(), 200);
        assert_eq!(s.chunk_count(), 4); // 3 sealed + head(8)
        let all: Vec<_> = s.iter_range(0, u64::MAX).collect();
        assert_eq!(all, regular(200));
        assert_eq!(s.latest(), Some((199 * 60_000, 40.0 + (199 % 7) as f64)));
        assert_eq!(s.first_ts(), Some(0));
    }

    #[test]
    fn out_of_order_upsert_lands_sorted() {
        let mut s = ChunkSeries::new(8);
        for i in [0u64, 2, 4, 6, 8, 10, 12, 14, 16, 18] {
            s.upsert(i * 1000, i as f64);
        }
        // Into a sealed chunk, into the head, and a replacement.
        assert!(s.upsert(3_000, 99.0));
        assert!(s.upsert(17_000, 88.0));
        assert!(!s.upsert(4_000, 77.0));
        let all: Vec<_> = s.iter_range(0, u64::MAX).collect();
        let ts: Vec<u64> = all.iter().map(|&(t, _)| t).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "{ts:?}");
        assert_eq!(s.len(), 12);
        assert!(all.contains(&(3_000, 99.0)));
        assert!(all.contains(&(4_000, 77.0)));
        assert!(all.contains(&(17_000, 88.0)));
    }

    #[test]
    fn upsert_splits_full_chunks() {
        let mut s = ChunkSeries::new(4);
        for i in [0u64, 10, 20, 30, 40, 50, 60, 70] {
            s.upsert(i * 1000, i as f64);
        }
        let before = s.chunk_count();
        // Insert inside the first sealed chunk until it splits.
        s.upsert(5_000, 1.0);
        assert!(s.chunk_count() > before);
        let ts: Vec<u64> = s.iter_range(0, u64::MAX).map(|(t, _)| t).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "{ts:?}");
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn prune_drops_whole_chunks_without_refolding_eagerly() {
        let mut s = ChunkSeries::new(16);
        for (ts, v) in regular(100) {
            s.upsert(ts, v);
        }
        let _ = s.rolling_agg();
        assert_eq!(s.refolds(), 0, "in-order appends never refold");
        let removed = s.prune_before(50 * 60_000);
        assert_eq!(removed, 50);
        assert_eq!(s.len(), 50);
        s.prune_before(60 * 60_000);
        s.prune_before(70 * 60_000);
        assert_eq!(s.refolds(), 0, "prunes only invalidate");
        let agg = s.rolling_agg();
        assert_eq!(s.refolds(), 1, "one refold for the whole burst");
        let mut fresh = RollingAgg::empty();
        for (_, v) in s.iter_range(0, u64::MAX) {
            fresh.fold(v);
        }
        assert_eq!(agg, fresh);
    }

    #[test]
    fn prune_merges_boundary_runts() {
        let mut s = ChunkSeries::new(16);
        for (ts, v) in regular(64) {
            s.upsert(ts, v);
        }
        // Cut so only 2 points survive in the boundary chunk (runt).
        let removed = s.prune_before(14 * 60_000);
        assert_eq!(removed, 14);
        let ts: Vec<u64> = s.iter_range(0, u64::MAX).map(|(t, _)| t).collect();
        assert_eq!(ts.len(), 50);
        assert_eq!(ts[0], 14 * 60_000);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn range_iteration_respects_window_and_skips_chunks() {
        let mut s = ChunkSeries::new(8);
        for (ts, v) in regular(100) {
            s.upsert(ts, v);
        }
        let window: Vec<_> = s.iter_range(10 * 60_000, 20 * 60_000).collect();
        assert_eq!(window.len(), 10);
        assert_eq!(window[0].0, 10 * 60_000);
        assert_eq!(window.last().unwrap().0, 19 * 60_000);
        assert_eq!(s.iter_range(7_000_000, 8_000_000).count(), 0);
    }

    #[test]
    fn clone_preserves_contents() {
        let mut s = ChunkSeries::new(8);
        for (ts, v) in regular(30) {
            s.upsert(ts, v);
        }
        let c = s.clone();
        assert_eq!(
            s.iter_range(0, u64::MAX).collect::<Vec<_>>(),
            c.iter_range(0, u64::MAX).collect::<Vec<_>>()
        );
        assert_eq!(s.rolling_agg(), c.rolling_agg());
    }
}
