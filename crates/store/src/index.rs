//! Label index and multi-series selection.
//!
//! Every series carries three labels: `device` (the managed element),
//! `oid` (the metric identifier, SNMP-style) and `class` (the partition
//! assigned by the [`Classifier`](crate::Classifier)). [`LabelIndex`]
//! maintains the inverted maps for all three plus the site roster, and
//! [`LabelFilter`] selects series with AND/OR matcher expressions such
//! as `device=r1 & (class=cpu | class=disk)` — evaluated as set algebra
//! over the inverted maps, never by scanning points.

use std::collections::{BTreeMap, BTreeSet};

/// A series key: `(device, metric)`.
pub type SeriesKey = (String, String);

/// The three indexed label axes of a series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Label {
    /// The managed device the series was observed on.
    Device,
    /// The metric identifier (SNMP-style OID / metric name).
    Oid,
    /// The partition class assigned by the classifier.
    Class,
}

impl Label {
    fn parse(name: &str) -> Option<Label> {
        match name {
            "device" => Some(Label::Device),
            "oid" | "metric" => Some(Label::Oid),
            "class" | "partition" => Some(Label::Class),
            _ => None,
        }
    }
}

/// A selection expression over series labels.
///
/// Grammar (whitespace-insensitive):
///
/// ```text
/// expr   := term ( '|' term )*
/// term   := factor ( '&' factor )*
/// factor := label '=' value | '(' expr ')' | '*'
/// label  := 'device' | 'oid' | 'metric' | 'class' | 'partition'
/// ```
///
/// `&` binds tighter than `|`; `*` matches every series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelFilter {
    /// Matches every series.
    Any,
    /// Matches series whose label equals the value exactly.
    Eq(Label, String),
    /// Both sides must match (set intersection).
    And(Box<LabelFilter>, Box<LabelFilter>),
    /// Either side may match (set union).
    Or(Box<LabelFilter>, Box<LabelFilter>),
}

impl LabelFilter {
    /// Matches one device.
    pub fn device(name: &str) -> LabelFilter {
        LabelFilter::Eq(Label::Device, name.to_owned())
    }

    /// Matches one metric identifier.
    pub fn oid(name: &str) -> LabelFilter {
        LabelFilter::Eq(Label::Oid, name.to_owned())
    }

    /// Matches one partition class.
    pub fn class(name: &str) -> LabelFilter {
        LabelFilter::Eq(Label::Class, name.to_owned())
    }

    /// Intersection with another filter.
    pub fn and(self, other: LabelFilter) -> LabelFilter {
        LabelFilter::And(Box::new(self), Box::new(other))
    }

    /// Union with another filter.
    pub fn or(self, other: LabelFilter) -> LabelFilter {
        LabelFilter::Or(Box::new(self), Box::new(other))
    }

    /// Parses a matcher expression; `Err` carries a human-readable
    /// description of the first syntax problem.
    ///
    /// # Examples
    ///
    /// ```
    /// use agentgrid_store::LabelFilter;
    ///
    /// let f = LabelFilter::parse("device=r1 & (class=cpu | class=disk)").unwrap();
    /// assert_eq!(
    ///     f,
    ///     LabelFilter::device("r1")
    ///         .and(LabelFilter::class("cpu").or(LabelFilter::class("disk")))
    /// );
    /// ```
    pub fn parse(input: &str) -> Result<LabelFilter, String> {
        let mut p = Parser { rest: input.trim() };
        let expr = p.expr()?;
        if !p.rest.is_empty() {
            return Err(format!("trailing input: {:?}", p.rest));
        }
        Ok(expr)
    }
}

struct Parser<'a> {
    rest: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn eat(&mut self, ch: char) -> bool {
        self.skip_ws();
        if let Some(stripped) = self.rest.strip_prefix(ch) {
            self.rest = stripped;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<LabelFilter, String> {
        let mut left = self.term()?;
        while self.eat('|') {
            let right = self.term()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<LabelFilter, String> {
        let mut left = self.factor()?;
        while self.eat('&') {
            let right = self.factor()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<LabelFilter, String> {
        self.skip_ws();
        if self.eat('*') {
            return Ok(LabelFilter::Any);
        }
        if self.eat('(') {
            let inner = self.expr()?;
            if !self.eat(')') {
                return Err(format!("expected ')' before {:?}", self.rest));
            }
            return Ok(inner);
        }
        let name_len = self
            .rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(self.rest.len());
        let (name, rest) = self.rest.split_at(name_len);
        let label = Label::parse(name)
            .ok_or_else(|| format!("unknown label {name:?} (expected device/oid/class)"))?;
        self.rest = rest;
        if !self.eat('=') {
            return Err(format!("expected '=' after {name:?}"));
        }
        self.skip_ws();
        let value_len = self
            .rest
            .find(|c: char| c.is_whitespace() || matches!(c, '&' | '|' | '(' | ')'))
            .unwrap_or(self.rest.len());
        if value_len == 0 {
            return Err(format!("empty value for label {name:?}"));
        }
        let (value, rest) = self.rest.split_at(value_len);
        self.rest = rest;
        Ok(LabelFilter::Eq(label, value.to_owned()))
    }
}

/// Inverted label maps over the series population, plus the site roster.
///
/// Both store backends embed one of these, so index-derived enumeration
/// (`devices`, `partitions`, `by_partition`, `select`) is identical by
/// construction across backends.
#[derive(Debug, Clone, Default)]
pub(crate) struct LabelIndex {
    /// device → metrics observed on it.
    device_index: BTreeMap<String, BTreeSet<String>>,
    /// partition → (device, metric) keys in it.
    partition_index: BTreeMap<String, BTreeSet<SeriesKey>>,
    /// metric → (device, metric) keys carrying it.
    oid_index: BTreeMap<String, BTreeSet<SeriesKey>>,
    /// site → devices seen at it.
    site_index: BTreeMap<String, BTreeSet<String>>,
    /// Every series key (the `*` universe).
    all: BTreeSet<SeriesKey>,
}

impl LabelIndex {
    pub(crate) fn observe(&mut self, device: &str, metric: &str, partition: &str, site: &str) {
        let key = (device.to_owned(), metric.to_owned());
        self.device_index
            .entry(device.to_owned())
            .or_default()
            .insert(metric.to_owned());
        self.partition_index
            .entry(partition.to_owned())
            .or_default()
            .insert(key.clone());
        self.oid_index
            .entry(metric.to_owned())
            .or_default()
            .insert(key.clone());
        self.site_index
            .entry(site.to_owned())
            .or_default()
            .insert(device.to_owned());
        self.all.insert(key);
    }

    pub(crate) fn devices(&self) -> impl Iterator<Item = &str> {
        self.device_index.keys().map(String::as_str)
    }

    pub(crate) fn metrics_of(&self, device: &str) -> impl Iterator<Item = &str> {
        self.device_index
            .get(device)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    pub(crate) fn devices_at(&self, site: &str) -> impl Iterator<Item = &str> {
        self.site_index
            .get(site)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    pub(crate) fn partitions(&self) -> Vec<&str> {
        self.partition_index
            .iter()
            .filter(|(_, keys)| !keys.is_empty())
            .map(|(p, _)| p.as_str())
            .collect()
    }

    pub(crate) fn by_partition<'a>(
        &'a self,
        partition: &str,
    ) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        self.partition_index
            .get(partition)
            .into_iter()
            .flatten()
            .map(|(d, m)| (d.as_str(), m.as_str()))
    }

    /// Evaluates a filter to the sorted set of matching series keys.
    pub(crate) fn select(&self, filter: &LabelFilter) -> BTreeSet<SeriesKey> {
        match filter {
            LabelFilter::Any => self.all.clone(),
            LabelFilter::Eq(Label::Device, value) => self
                .device_index
                .get(value)
                .into_iter()
                .flatten()
                .map(|m| (value.clone(), m.clone()))
                .collect(),
            LabelFilter::Eq(Label::Oid, value) => {
                self.oid_index.get(value).cloned().unwrap_or_default()
            }
            LabelFilter::Eq(Label::Class, value) => {
                self.partition_index.get(value).cloned().unwrap_or_default()
            }
            LabelFilter::And(a, b) => {
                let left = self.select(a);
                let right = self.select(b);
                left.intersection(&right).cloned().collect()
            }
            LabelFilter::Or(a, b) => {
                let mut left = self.select(a);
                left.extend(self.select(b));
                left
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> LabelIndex {
        let mut ix = LabelIndex::default();
        ix.observe("r1", "cpu.load.1", "cpu", "hq");
        ix.observe("r1", "if.1.in-octets", "interface", "hq");
        ix.observe("r2", "cpu.load.1", "cpu", "branch");
        ix.observe("s1", "storage.disk.used-pct", "disk", "branch");
        ix
    }

    fn keys(set: &BTreeSet<SeriesKey>) -> Vec<(&str, &str)> {
        set.iter().map(|(d, m)| (d.as_str(), m.as_str())).collect()
    }

    #[test]
    fn eq_matchers_use_the_inverted_maps() {
        let ix = sample_index();
        assert_eq!(
            keys(&ix.select(&LabelFilter::device("r1"))),
            [("r1", "cpu.load.1"), ("r1", "if.1.in-octets")]
        );
        assert_eq!(
            keys(&ix.select(&LabelFilter::oid("cpu.load.1"))),
            [("r1", "cpu.load.1"), ("r2", "cpu.load.1")]
        );
        assert_eq!(
            keys(&ix.select(&LabelFilter::class("disk"))),
            [("s1", "storage.disk.used-pct")]
        );
        assert!(ix.select(&LabelFilter::device("ghost")).is_empty());
    }

    #[test]
    fn and_or_compose_as_set_algebra() {
        let ix = sample_index();
        let f = LabelFilter::device("r1").and(LabelFilter::class("cpu"));
        assert_eq!(keys(&ix.select(&f)), [("r1", "cpu.load.1")]);
        let f = LabelFilter::class("cpu").or(LabelFilter::class("disk"));
        assert_eq!(
            keys(&ix.select(&f)),
            [
                ("r1", "cpu.load.1"),
                ("r2", "cpu.load.1"),
                ("s1", "storage.disk.used-pct")
            ]
        );
        assert_eq!(keys(&ix.select(&LabelFilter::Any)).len(), 4);
    }

    #[test]
    fn parser_round_trips_precedence() {
        let f = LabelFilter::parse("device=r1 & (class=cpu | class=disk)").unwrap();
        assert_eq!(
            f,
            LabelFilter::device("r1").and(LabelFilter::class("cpu").or(LabelFilter::class("disk")))
        );
        // '&' binds tighter than '|'.
        let f = LabelFilter::parse("class=cpu | class=disk & device=s1").unwrap();
        assert_eq!(
            f,
            LabelFilter::class("cpu").or(LabelFilter::class("disk").and(LabelFilter::device("s1")))
        );
        assert_eq!(LabelFilter::parse("*").unwrap(), LabelFilter::Any);
        assert_eq!(
            LabelFilter::parse("metric=cpu.load.1").unwrap(),
            LabelFilter::oid("cpu.load.1")
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(LabelFilter::parse("bogus=1").is_err());
        assert!(LabelFilter::parse("device r1").is_err());
        assert!(LabelFilter::parse("device=").is_err());
        assert!(LabelFilter::parse("(device=r1").is_err());
        assert!(LabelFilter::parse("device=r1 extra").is_err());
    }
}
