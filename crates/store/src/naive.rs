//! The record-per-point reference store.
//!
//! This is the store exactly as it shipped before the chunked engine:
//! one `BTreeMap<u64, f64>` per series plus eagerly-maintained rolling
//! aggregates. It is kept as the **executable specification** for the
//! chunked backend — the same convention as the rules crate's
//! `NaiveEngine` — and as the baseline in `benches/store_throughput.rs`.
//! Property tests drive both backends with identical operation
//! sequences and require bit-identical observables
//! (`stats`/`latest`/`trend_per_min`/`range`/windowed queries).

use std::collections::BTreeMap;

use crate::index::{LabelFilter, LabelIndex, SeriesKey};
use crate::query::{self, AggKind, SeriesStats, SeriesWindows};
use crate::{Classifier, Record};

/// Rolling aggregates of one series, kept in step with its points.
///
/// Accumulation happens in ascending-timestamp order in both the rolling
/// (append) path and the recompute path, so `sum`/`min`/`max` are
/// bit-for-bit identical to a fresh forward scan of the points.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SeriesAgg {
    count: usize,
    min: f64,
    max: f64,
    sum: f64,
}

impl SeriesAgg {
    fn empty() -> Self {
        SeriesAgg {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Folds in one value appended after every existing point.
    fn append(&mut self, value: f64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
    }

    /// Recomputes from scratch — the fallback for out-of-order inserts,
    /// same-timestamp replacements and pruning, where rolling updates
    /// can't be done exactly (min/max/sum are not invertible).
    fn rescan(points: &BTreeMap<u64, f64>) -> Self {
        let mut agg = SeriesAgg::empty();
        for v in points.values() {
            agg.append(*v);
        }
        agg
    }
}

/// One `(device, metric)` series: its points plus rolling aggregates.
#[derive(Debug, Clone)]
struct Series {
    /// timestamp → value.
    points: BTreeMap<u64, f64>,
    agg: SeriesAgg,
}

impl Series {
    fn new() -> Self {
        Series {
            points: BTreeMap::new(),
            agg: SeriesAgg::empty(),
        }
    }
}

/// The pre-chunking store: a `BTreeMap<u64, f64>` per series.
///
/// Simple, obviously correct, memory-hungry (~40+ bytes per point of
/// node overhead) — the executable spec the chunked backend is tested
/// against, and the baseline it is benchmarked against. The API
/// mirrors [`ChunkedStore`](crate::ChunkedStore) exactly.
#[derive(Debug, Clone)]
pub struct NaiveStore {
    classifier: Classifier,
    /// (device, metric) → series points + rolling aggregates.
    series: BTreeMap<SeriesKey, Series>,
    index: LabelIndex,
    len: usize,
}

impl NaiveStore {
    /// Creates an empty store with the given classifier.
    pub fn new(classifier: Classifier) -> Self {
        NaiveStore {
            classifier,
            series: BTreeMap::new(),
            index: LabelIndex::default(),
            len: 0,
        }
    }

    /// The classifier in use.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// Inserts one record. Re-inserting the same `(device, metric,
    /// timestamp)` replaces the value (idempotent collection retries).
    /// NaN values must be filtered by the caller (the facade drops
    /// them).
    pub fn insert(&mut self, record: Record) {
        debug_assert!(!record.value.is_nan(), "NaN must be rejected by the caller");
        let partition = self.classifier.classify(&record).to_owned();
        let key = (record.device.clone(), record.metric.clone());
        let series = self.series.entry(key).or_insert_with(Series::new);
        let appended = series
            .points
            .last_key_value()
            .is_none_or(|(t, _)| record.timestamp_ms > *t);
        if series
            .points
            .insert(record.timestamp_ms, record.value)
            .is_none()
        {
            self.len += 1;
        }
        if appended {
            series.agg.append(record.value);
        } else {
            // Out-of-order insert or same-timestamp replacement: rebuild
            // so the accumulation order stays a forward scan.
            series.agg = SeriesAgg::rescan(&series.points);
        }
        self.index
            .observe(&record.device, &record.metric, &partition, &record.site);
    }

    /// Total number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All devices seen, in name order.
    pub fn devices(&self) -> impl Iterator<Item = &str> {
        self.index.devices()
    }

    /// Metrics observed on one device.
    pub fn metrics_of(&self, device: &str) -> impl Iterator<Item = &str> {
        self.index.metrics_of(device)
    }

    /// Devices seen at a site.
    pub fn devices_at(&self, site: &str) -> impl Iterator<Item = &str> {
        self.index.devices_at(site)
    }

    /// Non-empty partitions, in name order.
    pub fn partitions(&self) -> Vec<&str> {
        self.index.partitions()
    }

    /// Series keys `(device, metric)` in a partition.
    pub fn by_partition<'a>(
        &'a self,
        partition: &str,
    ) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        self.index.by_partition(partition)
    }

    /// Sorted series keys matching a label filter.
    pub fn select(&self, filter: &LabelFilter) -> Vec<SeriesKey> {
        self.index.select(filter).into_iter().collect()
    }

    /// Points of one series in `[from_ms, to_ms)`, in time order.
    pub fn range(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.series
            .get(&(device.to_owned(), metric.to_owned()))
            .into_iter()
            .flat_map(move |series| series.points.range(from_ms..to_ms).map(|(t, v)| (*t, *v)))
    }

    /// Latest point of a series, if any. O(log n).
    pub fn latest(&self, device: &str, metric: &str) -> Option<(u64, f64)> {
        self.series
            .get(&(device.to_owned(), metric.to_owned()))?
            .points
            .last_key_value()
            .map(|(t, v)| (*t, *v))
    }

    /// Aggregate statistics over `[from_ms, to_ms)`; `None` when the
    /// range holds no points.
    ///
    /// When the window covers the whole series — the common "consolidate
    /// everything we have" case — this is an O(log n) lookup against the
    /// rolling aggregates; sub-ranges fall back to the scan.
    pub fn stats(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> Option<SeriesStats> {
        let series = self.series.get(&(device.to_owned(), metric.to_owned()))?;
        let (first_ts, _) = series.points.first_key_value()?;
        let (last_ts, last) = series.points.last_key_value()?;
        if from_ms <= *first_ts && to_ms > *last_ts {
            let agg = &series.agg;
            return Some(SeriesStats {
                count: agg.count,
                min: agg.min,
                max: agg.max,
                mean: agg.sum / agg.count as f64,
                last: *last,
            });
        }
        query::fold_stats(series.points.range(from_ms..to_ms).map(|(t, v)| (*t, *v)))
    }

    /// Least-squares slope of a series over `[from_ms, to_ms)`, in value
    /// units **per minute**. `None` with fewer than two points or zero
    /// time spread.
    pub fn trend_per_min(
        &self,
        device: &str,
        metric: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> Option<f64> {
        query::fold_trend(|| self.range(device, metric, from_ms, to_ms))
    }

    /// Windowed aggregates for every series matching `filter`,
    /// sequentially, in series-key order.
    pub fn query_windows(
        &self,
        filter: &LabelFilter,
        from_ms: u64,
        to_ms: u64,
        step_ms: u64,
        kind: AggKind,
    ) -> Vec<SeriesWindows> {
        let keys = self.select(filter);
        keys.into_iter()
            .map(|key| {
                let windows = query::windowed(
                    self.range(&key.0, &key.1, from_ms, to_ms),
                    from_ms,
                    step_ms,
                    kind,
                );
                SeriesWindows { key, windows }
            })
            .collect()
    }

    /// [`query_windows`](NaiveStore::query_windows) fanned out over
    /// `threads` scoped worker threads; byte-identical results.
    pub fn query_windows_parallel(
        &self,
        filter: &LabelFilter,
        from_ms: u64,
        to_ms: u64,
        step_ms: u64,
        kind: AggKind,
        threads: usize,
    ) -> Vec<SeriesWindows> {
        let keys = self.select(filter);
        query::fan_out(&keys, threads, |key| {
            let windows = query::windowed(
                self.range(&key.0, &key.1, from_ms, to_ms),
                from_ms,
                step_ms,
                kind,
            );
            SeriesWindows {
                key: key.clone(),
                windows,
            }
        })
    }

    /// Drops every point older than `horizon_ms`, returning how many were
    /// removed. Series and index entries that become empty are kept (the
    /// devices still exist; only their history aged out).
    pub fn prune_before(&mut self, horizon_ms: u64) -> usize {
        let mut removed = 0;
        for series in self.series.values_mut() {
            let keep = series.points.split_off(&horizon_ms);
            let dropped = series.points.len();
            series.points = keep;
            if dropped > 0 {
                removed += dropped;
                series.agg = SeriesAgg::rescan(&series.points);
            }
        }
        self.len -= removed;
        removed
    }

    /// Approximate payload bytes: 16 per point (`u64` timestamp +
    /// `f64` value), ignoring all `BTreeMap` node overhead — a
    /// deliberately conservative baseline for the compression
    /// comparison.
    pub fn storage_bytes(&self) -> usize {
        self.len * std::mem::size_of::<(u64, f64)>()
    }
}

impl Default for NaiveStore {
    fn default() -> Self {
        NaiveStore::new(Classifier::standard())
    }
}
