use crate::Record;

/// Maps records to named partitions ("data-clustering", paper §3.2).
///
/// The classifier grid must organize data "in a way that facilitates its
/// distribution and analysis": partitions are the unit the processor-grid
/// root later hands to containers (a container with `disk` knowledge gets
/// the `disk` partition, Fig. 3). Classification is by longest matching
/// metric prefix.
///
/// # Examples
///
/// ```
/// use agentgrid_store::{Classifier, Record};
///
/// let c = Classifier::standard();
/// assert_eq!(c.partition_of("cpu.load.1"), "cpu");
/// assert_eq!(c.partition_of("storage.disk.used-pct"), "disk");
/// assert_eq!(c.partition_of("something.odd"), "other");
/// ```
#[derive(Debug, Clone)]
pub struct Classifier {
    /// `(metric prefix, partition name)`, matched longest-prefix-first.
    rules: Vec<(String, String)>,
    fallback: String,
}

impl Classifier {
    /// Creates a classifier with no rules: everything lands in
    /// `fallback`.
    pub fn new(fallback: impl Into<String>) -> Self {
        Classifier {
            rules: Vec::new(),
            fallback: fallback.into(),
        }
    }

    /// The standard rule set for the simulated network's metrics.
    pub fn standard() -> Self {
        let mut c = Classifier::new("other");
        c.add_rule("cpu.", "cpu");
        c.add_rule("storage.ram", "memory");
        c.add_rule("storage.disk", "disk");
        c.add_rule("if.", "interface");
        c.add_rule("processes.", "process");
        c.add_rule("system.", "system");
        c
    }

    /// Adds a prefix rule. Longer prefixes win over shorter ones.
    pub fn add_rule(&mut self, prefix: impl Into<String>, partition: impl Into<String>) {
        self.rules.push((prefix.into(), partition.into()));
        // Longest-prefix-first so more specific rules shadow general ones.
        self.rules
            .sort_by_key(|(prefix, _)| std::cmp::Reverse(prefix.len()));
    }

    /// The partition a metric belongs to.
    pub fn partition_of(&self, metric: &str) -> &str {
        self.rules
            .iter()
            .find(|(prefix, _)| metric.starts_with(prefix.as_str()))
            .map(|(_, partition)| partition.as_str())
            .unwrap_or(&self.fallback)
    }

    /// The partition of a record.
    pub fn classify(&self, record: &Record) -> &str {
        self.partition_of(&record.metric)
    }

    /// All partitions this classifier can produce (sorted, including the
    /// fallback).
    pub fn known_partitions(&self) -> Vec<&str> {
        let mut p: Vec<&str> = self.rules.iter().map(|(_, v)| v.as_str()).collect();
        p.push(&self.fallback);
        p.sort_unstable();
        p.dedup();
        p
    }
}

impl Default for Classifier {
    fn default() -> Self {
        Classifier::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_covers_simulated_metrics() {
        let c = Classifier::standard();
        assert_eq!(c.partition_of("cpu.load.2"), "cpu");
        assert_eq!(c.partition_of("storage.ram.used"), "memory");
        assert_eq!(c.partition_of("storage.disk.used-pct"), "disk");
        assert_eq!(c.partition_of("if.3.oper-status"), "interface");
        assert_eq!(c.partition_of("processes.count"), "process");
        assert_eq!(c.partition_of("system.uptime-ticks"), "system");
    }

    #[test]
    fn fallback_catches_unknown_metrics() {
        let c = Classifier::standard();
        assert_eq!(c.partition_of("mystery"), "other");
    }

    #[test]
    fn longest_prefix_wins() {
        let mut c = Classifier::new("other");
        c.add_rule("a.", "general");
        c.add_rule("a.b.", "specific");
        assert_eq!(c.partition_of("a.b.c"), "specific");
        assert_eq!(c.partition_of("a.x"), "general");
    }

    #[test]
    fn known_partitions_are_sorted_and_unique() {
        let c = Classifier::standard();
        let p = c.known_partitions();
        assert!(p.contains(&"cpu") && p.contains(&"other"));
        let mut sorted = p.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(p, sorted);
    }

    #[test]
    fn classify_uses_record_metric() {
        let c = Classifier::standard();
        let r = Record::new("d", "cpu.load.1", 1.0, 0);
        assert_eq!(c.classify(&r), "cpu");
    }
}
