/root/repo/target/debug/deps/agentgrid_store-d29a6afdee7ed9ff.d: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

/root/repo/target/debug/deps/agentgrid_store-d29a6afdee7ed9ff: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

crates/store/src/lib.rs:
crates/store/src/classify.rs:
crates/store/src/record.rs:
crates/store/src/replicate.rs:
crates/store/src/store.rs:
