/root/repo/target/debug/deps/fault_tolerance-4a164706498517bb.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-4a164706498517bb: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
