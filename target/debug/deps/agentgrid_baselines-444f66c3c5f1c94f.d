/root/repo/target/debug/deps/agentgrid_baselines-444f66c3c5f1c94f.d: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid_baselines-444f66c3c5f1c94f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/centralized.rs:
crates/baselines/src/multiagent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
