/root/repo/target/debug/deps/serde-f8c512e423a27c7f.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f8c512e423a27c7f.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f8c512e423a27c7f.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
