/root/repo/target/debug/deps/repro-568a1d964f82267c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-568a1d964f82267c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
