/root/repo/target/debug/deps/agentgrid_rules-5bfe5d9a67e63f8b.d: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs

/root/repo/target/debug/deps/libagentgrid_rules-5bfe5d9a67e63f8b.rlib: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs

/root/repo/target/debug/deps/libagentgrid_rules-5bfe5d9a67e63f8b.rmeta: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs

crates/rules/src/lib.rs:
crates/rules/src/dsl.rs:
crates/rules/src/engine.rs:
crates/rules/src/fact.rs:
crates/rules/src/pattern.rs:
crates/rules/src/rule.rs:
