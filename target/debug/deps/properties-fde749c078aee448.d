/root/repo/target/debug/deps/properties-fde749c078aee448.d: crates/des/tests/properties.rs

/root/repo/target/debug/deps/properties-fde749c078aee448: crates/des/tests/properties.rs

crates/des/tests/properties.rs:
