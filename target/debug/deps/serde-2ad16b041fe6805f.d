/root/repo/target/debug/deps/serde-2ad16b041fe6805f.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-2ad16b041fe6805f: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
