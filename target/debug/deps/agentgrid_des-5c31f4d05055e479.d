/root/repo/target/debug/deps/agentgrid_des-5c31f4d05055e479.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid_des-5c31f4d05055e479.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs Cargo.toml

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/job.rs:
crates/des/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
