/root/repo/target/debug/deps/scaling-50560e2ccd2df5f8.d: crates/bench/benches/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-50560e2ccd2df5f8.rmeta: crates/bench/benches/scaling.rs Cargo.toml

crates/bench/benches/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
