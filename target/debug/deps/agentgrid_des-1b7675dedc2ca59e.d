/root/repo/target/debug/deps/agentgrid_des-1b7675dedc2ca59e.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

/root/repo/target/debug/deps/agentgrid_des-1b7675dedc2ca59e: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/job.rs:
crates/des/src/report.rs:
