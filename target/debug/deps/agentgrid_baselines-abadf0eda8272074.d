/root/repo/target/debug/deps/agentgrid_baselines-abadf0eda8272074.d: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

/root/repo/target/debug/deps/libagentgrid_baselines-abadf0eda8272074.rlib: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

/root/repo/target/debug/deps/libagentgrid_baselines-abadf0eda8272074.rmeta: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

crates/baselines/src/lib.rs:
crates/baselines/src/centralized.rs:
crates/baselines/src/multiagent.rs:
