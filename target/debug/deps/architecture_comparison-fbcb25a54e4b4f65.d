/root/repo/target/debug/deps/architecture_comparison-fbcb25a54e4b4f65.d: tests/architecture_comparison.rs

/root/repo/target/debug/deps/architecture_comparison-fbcb25a54e4b4f65: tests/architecture_comparison.rs

tests/architecture_comparison.rs:
