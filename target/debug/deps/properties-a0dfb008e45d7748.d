/root/repo/target/debug/deps/properties-a0dfb008e45d7748.d: crates/rules/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a0dfb008e45d7748.rmeta: crates/rules/tests/properties.rs Cargo.toml

crates/rules/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
