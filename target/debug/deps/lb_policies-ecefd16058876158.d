/root/repo/target/debug/deps/lb_policies-ecefd16058876158.d: crates/bench/benches/lb_policies.rs Cargo.toml

/root/repo/target/debug/deps/liblb_policies-ecefd16058876158.rmeta: crates/bench/benches/lb_policies.rs Cargo.toml

crates/bench/benches/lb_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
