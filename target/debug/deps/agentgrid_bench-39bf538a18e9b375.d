/root/repo/target/debug/deps/agentgrid_bench-39bf538a18e9b375.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/agentgrid_bench-39bf538a18e9b375: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
