/root/repo/target/debug/deps/properties-4bbc9e482dce5081.d: crates/net/tests/properties.rs

/root/repo/target/debug/deps/properties-4bbc9e482dce5081: crates/net/tests/properties.rs

crates/net/tests/properties.rs:
