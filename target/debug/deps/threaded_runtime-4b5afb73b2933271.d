/root/repo/target/debug/deps/threaded_runtime-4b5afb73b2933271.d: tests/threaded_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libthreaded_runtime-4b5afb73b2933271.rmeta: tests/threaded_runtime.rs Cargo.toml

tests/threaded_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
