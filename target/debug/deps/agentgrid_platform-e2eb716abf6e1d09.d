/root/repo/target/debug/deps/agentgrid_platform-e2eb716abf6e1d09.d: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid_platform-e2eb716abf6e1d09.rmeta: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs Cargo.toml

crates/platform/src/lib.rs:
crates/platform/src/agent.rs:
crates/platform/src/container.rs:
crates/platform/src/df.rs:
crates/platform/src/platform.rs:
crates/platform/src/runtime.rs:
crates/platform/src/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
