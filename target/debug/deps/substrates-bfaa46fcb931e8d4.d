/root/repo/target/debug/deps/substrates-bfaa46fcb931e8d4.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-bfaa46fcb931e8d4.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
