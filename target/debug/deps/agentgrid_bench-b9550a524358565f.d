/root/repo/target/debug/deps/agentgrid_bench-b9550a524358565f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libagentgrid_bench-b9550a524358565f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libagentgrid_bench-b9550a524358565f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
