/root/repo/target/debug/deps/rand-a9e17a60f4f11d27.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-a9e17a60f4f11d27: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
