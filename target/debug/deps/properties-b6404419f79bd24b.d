/root/repo/target/debug/deps/properties-b6404419f79bd24b.d: crates/rules/tests/properties.rs

/root/repo/target/debug/deps/properties-b6404419f79bd24b: crates/rules/tests/properties.rs

crates/rules/tests/properties.rs:
