/root/repo/target/debug/deps/rand-cce7bac3a19147fb.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-cce7bac3a19147fb.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
