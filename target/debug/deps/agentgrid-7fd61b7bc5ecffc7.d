/root/repo/target/debug/deps/agentgrid-7fd61b7bc5ecffc7.d: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/broker.rs crates/core/src/costmodel.rs crates/core/src/grid/mod.rs crates/core/src/grid/analyzer.rs crates/core/src/grid/classifier.rs crates/core/src/grid/collector.rs crates/core/src/grid/interface.rs crates/core/src/grid/root.rs crates/core/src/grid/system.rs crates/core/src/mobility.rs crates/core/src/scenario.rs crates/core/src/workflow.rs

/root/repo/target/debug/deps/libagentgrid-7fd61b7bc5ecffc7.rlib: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/broker.rs crates/core/src/costmodel.rs crates/core/src/grid/mod.rs crates/core/src/grid/analyzer.rs crates/core/src/grid/classifier.rs crates/core/src/grid/collector.rs crates/core/src/grid/interface.rs crates/core/src/grid/root.rs crates/core/src/grid/system.rs crates/core/src/mobility.rs crates/core/src/scenario.rs crates/core/src/workflow.rs

/root/repo/target/debug/deps/libagentgrid-7fd61b7bc5ecffc7.rmeta: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/broker.rs crates/core/src/costmodel.rs crates/core/src/grid/mod.rs crates/core/src/grid/analyzer.rs crates/core/src/grid/classifier.rs crates/core/src/grid/collector.rs crates/core/src/grid/interface.rs crates/core/src/grid/root.rs crates/core/src/grid/system.rs crates/core/src/mobility.rs crates/core/src/scenario.rs crates/core/src/workflow.rs

crates/core/src/lib.rs:
crates/core/src/balance.rs:
crates/core/src/broker.rs:
crates/core/src/costmodel.rs:
crates/core/src/grid/mod.rs:
crates/core/src/grid/analyzer.rs:
crates/core/src/grid/classifier.rs:
crates/core/src/grid/collector.rs:
crates/core/src/grid/interface.rs:
crates/core/src/grid/root.rs:
crates/core/src/grid/system.rs:
crates/core/src/mobility.rs:
crates/core/src/scenario.rs:
crates/core/src/workflow.rs:
