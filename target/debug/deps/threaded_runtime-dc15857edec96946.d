/root/repo/target/debug/deps/threaded_runtime-dc15857edec96946.d: tests/threaded_runtime.rs

/root/repo/target/debug/deps/threaded_runtime-dc15857edec96946: tests/threaded_runtime.rs

tests/threaded_runtime.rs:
