/root/repo/target/debug/deps/fig6-3406bc8cf3d9cbf8.d: crates/bench/benches/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-3406bc8cf3d9cbf8.rmeta: crates/bench/benches/fig6.rs Cargo.toml

crates/bench/benches/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
