/root/repo/target/debug/deps/repro-8434bc35e833f79d.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-8434bc35e833f79d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
