/root/repo/target/debug/deps/threaded_runtime-bf130bfd036caed1.d: tests/threaded_runtime.rs

/root/repo/target/debug/deps/threaded_runtime-bf130bfd036caed1: tests/threaded_runtime.rs

tests/threaded_runtime.rs:
