/root/repo/target/debug/deps/agentgrid_store-2126b00ff3c74aca.d: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

/root/repo/target/debug/deps/agentgrid_store-2126b00ff3c74aca: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

crates/store/src/lib.rs:
crates/store/src/classify.rs:
crates/store/src/record.rs:
crates/store/src/replicate.rs:
crates/store/src/store.rs:
