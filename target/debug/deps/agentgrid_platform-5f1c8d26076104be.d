/root/repo/target/debug/deps/agentgrid_platform-5f1c8d26076104be.d: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

/root/repo/target/debug/deps/libagentgrid_platform-5f1c8d26076104be.rlib: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

/root/repo/target/debug/deps/libagentgrid_platform-5f1c8d26076104be.rmeta: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

crates/platform/src/lib.rs:
crates/platform/src/agent.rs:
crates/platform/src/container.rs:
crates/platform/src/df.rs:
crates/platform/src/platform.rs:
crates/platform/src/runtime.rs:
crates/platform/src/threaded.rs:
