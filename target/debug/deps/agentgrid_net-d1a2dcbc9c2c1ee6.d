/root/repo/target/debug/deps/agentgrid_net-d1a2dcbc9c2c1ee6.d: crates/net/src/lib.rs crates/net/src/cli.rs crates/net/src/device.rs crates/net/src/fault.rs crates/net/src/metrics.rs crates/net/src/mib.rs crates/net/src/oid.rs crates/net/src/oids.rs crates/net/src/snmp.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/agentgrid_net-d1a2dcbc9c2c1ee6: crates/net/src/lib.rs crates/net/src/cli.rs crates/net/src/device.rs crates/net/src/fault.rs crates/net/src/metrics.rs crates/net/src/mib.rs crates/net/src/oid.rs crates/net/src/oids.rs crates/net/src/snmp.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/cli.rs:
crates/net/src/device.rs:
crates/net/src/fault.rs:
crates/net/src/metrics.rs:
crates/net/src/mib.rs:
crates/net/src/oid.rs:
crates/net/src/oids.rs:
crates/net/src/snmp.rs:
crates/net/src/topology.rs:
