/root/repo/target/debug/deps/serde-5defa4d2b20627b7.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-5defa4d2b20627b7.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
