/root/repo/target/debug/deps/fig1_workflow-780eac6c89279adb.d: crates/bench/benches/fig1_workflow.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_workflow-780eac6c89279adb.rmeta: crates/bench/benches/fig1_workflow.rs Cargo.toml

crates/bench/benches/fig1_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
