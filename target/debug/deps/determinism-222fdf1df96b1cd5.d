/root/repo/target/debug/deps/determinism-222fdf1df96b1cd5.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-222fdf1df96b1cd5: tests/determinism.rs

tests/determinism.rs:
