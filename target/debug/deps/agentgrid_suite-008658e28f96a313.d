/root/repo/target/debug/deps/agentgrid_suite-008658e28f96a313.d: src/lib.rs

/root/repo/target/debug/deps/libagentgrid_suite-008658e28f96a313.rlib: src/lib.rs

/root/repo/target/debug/deps/libagentgrid_suite-008658e28f96a313.rmeta: src/lib.rs

src/lib.rs:
