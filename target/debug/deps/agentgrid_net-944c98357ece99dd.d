/root/repo/target/debug/deps/agentgrid_net-944c98357ece99dd.d: crates/net/src/lib.rs crates/net/src/cli.rs crates/net/src/device.rs crates/net/src/fault.rs crates/net/src/metrics.rs crates/net/src/mib.rs crates/net/src/oid.rs crates/net/src/oids.rs crates/net/src/snmp.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/agentgrid_net-944c98357ece99dd: crates/net/src/lib.rs crates/net/src/cli.rs crates/net/src/device.rs crates/net/src/fault.rs crates/net/src/metrics.rs crates/net/src/mib.rs crates/net/src/oid.rs crates/net/src/oids.rs crates/net/src/snmp.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/cli.rs:
crates/net/src/device.rs:
crates/net/src/fault.rs:
crates/net/src/metrics.rs:
crates/net/src/mib.rs:
crates/net/src/oid.rs:
crates/net/src/oids.rs:
crates/net/src/snmp.rs:
crates/net/src/topology.rs:
