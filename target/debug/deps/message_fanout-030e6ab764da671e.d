/root/repo/target/debug/deps/message_fanout-030e6ab764da671e.d: crates/bench/benches/message_fanout.rs Cargo.toml

/root/repo/target/debug/deps/libmessage_fanout-030e6ab764da671e.rmeta: crates/bench/benches/message_fanout.rs Cargo.toml

crates/bench/benches/message_fanout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
