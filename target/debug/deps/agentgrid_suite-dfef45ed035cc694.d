/root/repo/target/debug/deps/agentgrid_suite-dfef45ed035cc694.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid_suite-dfef45ed035cc694.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
