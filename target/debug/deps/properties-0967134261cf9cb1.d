/root/repo/target/debug/deps/properties-0967134261cf9cb1.d: crates/platform/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0967134261cf9cb1.rmeta: crates/platform/tests/properties.rs Cargo.toml

crates/platform/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
