/root/repo/target/debug/deps/properties-2f81cba1c60f0201.d: crates/rules/tests/properties.rs

/root/repo/target/debug/deps/properties-2f81cba1c60f0201: crates/rules/tests/properties.rs

crates/rules/tests/properties.rs:
