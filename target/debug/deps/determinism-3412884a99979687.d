/root/repo/target/debug/deps/determinism-3412884a99979687.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-3412884a99979687: tests/determinism.rs

tests/determinism.rs:
