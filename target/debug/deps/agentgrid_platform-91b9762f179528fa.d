/root/repo/target/debug/deps/agentgrid_platform-91b9762f179528fa.d: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

/root/repo/target/debug/deps/agentgrid_platform-91b9762f179528fa: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

crates/platform/src/lib.rs:
crates/platform/src/agent.rs:
crates/platform/src/container.rs:
crates/platform/src/df.rs:
crates/platform/src/platform.rs:
crates/platform/src/runtime.rs:
crates/platform/src/threaded.rs:
