/root/repo/target/debug/deps/properties-a6864c7acd2d91fd.d: crates/store/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a6864c7acd2d91fd.rmeta: crates/store/tests/properties.rs Cargo.toml

crates/store/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
