/root/repo/target/debug/deps/fig1_workflow-a89eb0c8788a76c4.d: crates/bench/benches/fig1_workflow.rs

/root/repo/target/debug/deps/fig1_workflow-a89eb0c8788a76c4: crates/bench/benches/fig1_workflow.rs

crates/bench/benches/fig1_workflow.rs:
