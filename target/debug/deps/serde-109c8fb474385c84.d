/root/repo/target/debug/deps/serde-109c8fb474385c84.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-109c8fb474385c84: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
