/root/repo/target/debug/deps/agentgrid_bench-62788fadb6f13727.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/agentgrid_bench-62788fadb6f13727: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
