/root/repo/target/debug/deps/properties-14997f8cd7fd8423.d: crates/acl/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-14997f8cd7fd8423.rmeta: crates/acl/tests/properties.rs Cargo.toml

crates/acl/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
