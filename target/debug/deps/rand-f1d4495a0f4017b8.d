/root/repo/target/debug/deps/rand-f1d4495a0f4017b8.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-f1d4495a0f4017b8.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
