/root/repo/target/debug/deps/agentgrid-78230b6f4d7cd268.d: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/broker.rs crates/core/src/costmodel.rs crates/core/src/grid/mod.rs crates/core/src/grid/analyzer.rs crates/core/src/grid/classifier.rs crates/core/src/grid/collector.rs crates/core/src/grid/interface.rs crates/core/src/grid/root.rs crates/core/src/grid/system.rs crates/core/src/mobility.rs crates/core/src/scenario.rs crates/core/src/workflow.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid-78230b6f4d7cd268.rmeta: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/broker.rs crates/core/src/costmodel.rs crates/core/src/grid/mod.rs crates/core/src/grid/analyzer.rs crates/core/src/grid/classifier.rs crates/core/src/grid/collector.rs crates/core/src/grid/interface.rs crates/core/src/grid/root.rs crates/core/src/grid/system.rs crates/core/src/mobility.rs crates/core/src/scenario.rs crates/core/src/workflow.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/balance.rs:
crates/core/src/broker.rs:
crates/core/src/costmodel.rs:
crates/core/src/grid/mod.rs:
crates/core/src/grid/analyzer.rs:
crates/core/src/grid/classifier.rs:
crates/core/src/grid/collector.rs:
crates/core/src/grid/interface.rs:
crates/core/src/grid/root.rs:
crates/core/src/grid/system.rs:
crates/core/src/mobility.rs:
crates/core/src/scenario.rs:
crates/core/src/workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
