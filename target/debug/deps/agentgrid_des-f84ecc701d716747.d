/root/repo/target/debug/deps/agentgrid_des-f84ecc701d716747.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

/root/repo/target/debug/deps/libagentgrid_des-f84ecc701d716747.rlib: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

/root/repo/target/debug/deps/libagentgrid_des-f84ecc701d716747.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/job.rs:
crates/des/src/report.rs:
