/root/repo/target/debug/deps/agentgrid_rules-c70ac0925edc21ca.d: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid_rules-c70ac0925edc21ca.rmeta: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs Cargo.toml

crates/rules/src/lib.rs:
crates/rules/src/dsl.rs:
crates/rules/src/engine.rs:
crates/rules/src/fact.rs:
crates/rules/src/pattern.rs:
crates/rules/src/rule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
