/root/repo/target/debug/deps/feedback_and_mobility-153ba8c6bf9c6272.d: tests/feedback_and_mobility.rs Cargo.toml

/root/repo/target/debug/deps/libfeedback_and_mobility-153ba8c6bf9c6272.rmeta: tests/feedback_and_mobility.rs Cargo.toml

tests/feedback_and_mobility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
