/root/repo/target/debug/deps/agentgrid_bench-4d7fb4a45fba8f5c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libagentgrid_bench-4d7fb4a45fba8f5c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libagentgrid_bench-4d7fb4a45fba8f5c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
