/root/repo/target/debug/deps/end_to_end-3047b6533ef8f83d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3047b6533ef8f83d: tests/end_to_end.rs

tests/end_to_end.rs:
