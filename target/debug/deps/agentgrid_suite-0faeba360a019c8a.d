/root/repo/target/debug/deps/agentgrid_suite-0faeba360a019c8a.d: src/lib.rs

/root/repo/target/debug/deps/agentgrid_suite-0faeba360a019c8a: src/lib.rs

src/lib.rs:
