/root/repo/target/debug/deps/lb_policies-30cf4737d4441405.d: crates/bench/benches/lb_policies.rs

/root/repo/target/debug/deps/lb_policies-30cf4737d4441405: crates/bench/benches/lb_policies.rs

crates/bench/benches/lb_policies.rs:
