/root/repo/target/debug/deps/agentgrid-5420faeec8f42015.d: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/broker.rs crates/core/src/costmodel.rs crates/core/src/grid/mod.rs crates/core/src/grid/analyzer.rs crates/core/src/grid/classifier.rs crates/core/src/grid/collector.rs crates/core/src/grid/interface.rs crates/core/src/grid/root.rs crates/core/src/grid/system.rs crates/core/src/mobility.rs crates/core/src/scenario.rs crates/core/src/workflow.rs

/root/repo/target/debug/deps/agentgrid-5420faeec8f42015: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/broker.rs crates/core/src/costmodel.rs crates/core/src/grid/mod.rs crates/core/src/grid/analyzer.rs crates/core/src/grid/classifier.rs crates/core/src/grid/collector.rs crates/core/src/grid/interface.rs crates/core/src/grid/root.rs crates/core/src/grid/system.rs crates/core/src/mobility.rs crates/core/src/scenario.rs crates/core/src/workflow.rs

crates/core/src/lib.rs:
crates/core/src/balance.rs:
crates/core/src/broker.rs:
crates/core/src/costmodel.rs:
crates/core/src/grid/mod.rs:
crates/core/src/grid/analyzer.rs:
crates/core/src/grid/classifier.rs:
crates/core/src/grid/collector.rs:
crates/core/src/grid/interface.rs:
crates/core/src/grid/root.rs:
crates/core/src/grid/system.rs:
crates/core/src/mobility.rs:
crates/core/src/scenario.rs:
crates/core/src/workflow.rs:
