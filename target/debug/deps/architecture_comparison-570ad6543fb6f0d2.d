/root/repo/target/debug/deps/architecture_comparison-570ad6543fb6f0d2.d: tests/architecture_comparison.rs

/root/repo/target/debug/deps/architecture_comparison-570ad6543fb6f0d2: tests/architecture_comparison.rs

tests/architecture_comparison.rs:
