/root/repo/target/debug/deps/properties-1f6978c9b54d812b.d: crates/store/tests/properties.rs

/root/repo/target/debug/deps/properties-1f6978c9b54d812b: crates/store/tests/properties.rs

crates/store/tests/properties.rs:
