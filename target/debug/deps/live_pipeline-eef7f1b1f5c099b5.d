/root/repo/target/debug/deps/live_pipeline-eef7f1b1f5c099b5.d: crates/bench/benches/live_pipeline.rs

/root/repo/target/debug/deps/live_pipeline-eef7f1b1f5c099b5: crates/bench/benches/live_pipeline.rs

crates/bench/benches/live_pipeline.rs:
