/root/repo/target/debug/deps/properties-47d341e6efcab129.d: crates/acl/tests/properties.rs

/root/repo/target/debug/deps/properties-47d341e6efcab129: crates/acl/tests/properties.rs

crates/acl/tests/properties.rs:
