/root/repo/target/debug/deps/agentgrid_des-61c85ac3d8e253c8.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

/root/repo/target/debug/deps/libagentgrid_des-61c85ac3d8e253c8.rlib: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

/root/repo/target/debug/deps/libagentgrid_des-61c85ac3d8e253c8.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/job.rs:
crates/des/src/report.rs:
