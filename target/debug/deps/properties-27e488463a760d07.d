/root/repo/target/debug/deps/properties-27e488463a760d07.d: crates/des/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-27e488463a760d07.rmeta: crates/des/tests/properties.rs Cargo.toml

crates/des/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
