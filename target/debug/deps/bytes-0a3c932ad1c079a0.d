/root/repo/target/debug/deps/bytes-0a3c932ad1c079a0.d: shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-0a3c932ad1c079a0.rmeta: shims/bytes/src/lib.rs Cargo.toml

shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
