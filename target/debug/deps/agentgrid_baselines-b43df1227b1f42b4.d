/root/repo/target/debug/deps/agentgrid_baselines-b43df1227b1f42b4.d: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

/root/repo/target/debug/deps/agentgrid_baselines-b43df1227b1f42b4: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

crates/baselines/src/lib.rs:
crates/baselines/src/centralized.rs:
crates/baselines/src/multiagent.rs:
