/root/repo/target/debug/deps/criterion-e400bede719acddc.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e400bede719acddc.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e400bede719acddc.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
