/root/repo/target/debug/deps/properties-6be2ff152544a474.d: crates/acl/tests/properties.rs

/root/repo/target/debug/deps/properties-6be2ff152544a474: crates/acl/tests/properties.rs

crates/acl/tests/properties.rs:
