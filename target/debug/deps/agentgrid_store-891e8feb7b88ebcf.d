/root/repo/target/debug/deps/agentgrid_store-891e8feb7b88ebcf.d: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

/root/repo/target/debug/deps/libagentgrid_store-891e8feb7b88ebcf.rlib: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

/root/repo/target/debug/deps/libagentgrid_store-891e8feb7b88ebcf.rmeta: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

crates/store/src/lib.rs:
crates/store/src/classify.rs:
crates/store/src/record.rs:
crates/store/src/replicate.rs:
crates/store/src/store.rs:
