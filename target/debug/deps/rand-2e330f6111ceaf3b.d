/root/repo/target/debug/deps/rand-2e330f6111ceaf3b.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2e330f6111ceaf3b.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2e330f6111ceaf3b.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
