/root/repo/target/debug/deps/agentgrid_store-8ec283d56dee3b83.d: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid_store-8ec283d56dee3b83.rmeta: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/classify.rs:
crates/store/src/record.rs:
crates/store/src/replicate.rs:
crates/store/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
