/root/repo/target/debug/deps/serde-2fa80c305ce3a943.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2fa80c305ce3a943.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2fa80c305ce3a943.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
