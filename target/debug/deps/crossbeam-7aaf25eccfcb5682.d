/root/repo/target/debug/deps/crossbeam-7aaf25eccfcb5682.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-7aaf25eccfcb5682: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
