/root/repo/target/debug/deps/repro-4b7343ea8c6b4c97.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-4b7343ea8c6b4c97.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
