/root/repo/target/debug/deps/architecture_comparison-de83e310f87ca2ad.d: tests/architecture_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libarchitecture_comparison-de83e310f87ca2ad.rmeta: tests/architecture_comparison.rs Cargo.toml

tests/architecture_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
