/root/repo/target/debug/deps/proptest-4ed2f6da4a8e5e18.d: shims/proptest/src/lib.rs shims/proptest/src/test_runner.rs shims/proptest/src/strategy.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/string.rs

/root/repo/target/debug/deps/libproptest-4ed2f6da4a8e5e18.rlib: shims/proptest/src/lib.rs shims/proptest/src/test_runner.rs shims/proptest/src/strategy.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/string.rs

/root/repo/target/debug/deps/libproptest-4ed2f6da4a8e5e18.rmeta: shims/proptest/src/lib.rs shims/proptest/src/test_runner.rs shims/proptest/src/strategy.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/string.rs

shims/proptest/src/lib.rs:
shims/proptest/src/test_runner.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/num.rs:
shims/proptest/src/option.rs:
shims/proptest/src/string.rs:
