/root/repo/target/debug/deps/live_pipeline-d8f92dcda40375c8.d: crates/bench/benches/live_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/liblive_pipeline-d8f92dcda40375c8.rmeta: crates/bench/benches/live_pipeline.rs Cargo.toml

crates/bench/benches/live_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
