/root/repo/target/debug/deps/agentgrid_suite-340908e243a71c04.d: src/lib.rs

/root/repo/target/debug/deps/libagentgrid_suite-340908e243a71c04.rlib: src/lib.rs

/root/repo/target/debug/deps/libagentgrid_suite-340908e243a71c04.rmeta: src/lib.rs

src/lib.rs:
