/root/repo/target/debug/deps/properties-2926580d2832b43f.d: crates/platform/tests/properties.rs

/root/repo/target/debug/deps/properties-2926580d2832b43f: crates/platform/tests/properties.rs

crates/platform/tests/properties.rs:
