/root/repo/target/debug/deps/agentgrid_rules-0ff3e404cf1b0321.d: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs

/root/repo/target/debug/deps/agentgrid_rules-0ff3e404cf1b0321: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs

crates/rules/src/lib.rs:
crates/rules/src/dsl.rs:
crates/rules/src/engine.rs:
crates/rules/src/fact.rs:
crates/rules/src/pattern.rs:
crates/rules/src/rule.rs:
