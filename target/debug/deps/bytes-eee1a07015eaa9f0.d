/root/repo/target/debug/deps/bytes-eee1a07015eaa9f0.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-eee1a07015eaa9f0.rlib: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-eee1a07015eaa9f0.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
