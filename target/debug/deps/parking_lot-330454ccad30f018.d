/root/repo/target/debug/deps/parking_lot-330454ccad30f018.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-330454ccad30f018.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-330454ccad30f018.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
