/root/repo/target/debug/deps/fault_tolerance-e0fe056c81b58296.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-e0fe056c81b58296: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
