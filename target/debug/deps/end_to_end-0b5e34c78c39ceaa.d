/root/repo/target/debug/deps/end_to_end-0b5e34c78c39ceaa.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0b5e34c78c39ceaa: tests/end_to_end.rs

tests/end_to_end.rs:
