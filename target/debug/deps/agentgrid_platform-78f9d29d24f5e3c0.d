/root/repo/target/debug/deps/agentgrid_platform-78f9d29d24f5e3c0.d: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid_platform-78f9d29d24f5e3c0.rmeta: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs Cargo.toml

crates/platform/src/lib.rs:
crates/platform/src/agent.rs:
crates/platform/src/container.rs:
crates/platform/src/df.rs:
crates/platform/src/platform.rs:
crates/platform/src/runtime.rs:
crates/platform/src/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
