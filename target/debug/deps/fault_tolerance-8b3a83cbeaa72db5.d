/root/repo/target/debug/deps/fault_tolerance-8b3a83cbeaa72db5.d: tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-8b3a83cbeaa72db5.rmeta: tests/fault_tolerance.rs Cargo.toml

tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
