/root/repo/target/debug/deps/properties-ed48b0cefc8802f5.d: crates/net/tests/properties.rs

/root/repo/target/debug/deps/properties-ed48b0cefc8802f5: crates/net/tests/properties.rs

crates/net/tests/properties.rs:
