/root/repo/target/debug/deps/properties-a3ddf7e0a958a34e.d: crates/store/tests/properties.rs

/root/repo/target/debug/deps/properties-a3ddf7e0a958a34e: crates/store/tests/properties.rs

crates/store/tests/properties.rs:
