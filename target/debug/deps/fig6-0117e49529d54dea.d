/root/repo/target/debug/deps/fig6-0117e49529d54dea.d: crates/bench/benches/fig6.rs

/root/repo/target/debug/deps/fig6-0117e49529d54dea: crates/bench/benches/fig6.rs

crates/bench/benches/fig6.rs:
