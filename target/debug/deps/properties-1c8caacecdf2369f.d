/root/repo/target/debug/deps/properties-1c8caacecdf2369f.d: crates/platform/tests/properties.rs

/root/repo/target/debug/deps/properties-1c8caacecdf2369f: crates/platform/tests/properties.rs

crates/platform/tests/properties.rs:
