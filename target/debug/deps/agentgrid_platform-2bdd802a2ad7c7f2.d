/root/repo/target/debug/deps/agentgrid_platform-2bdd802a2ad7c7f2.d: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

/root/repo/target/debug/deps/libagentgrid_platform-2bdd802a2ad7c7f2.rlib: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

/root/repo/target/debug/deps/libagentgrid_platform-2bdd802a2ad7c7f2.rmeta: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

crates/platform/src/lib.rs:
crates/platform/src/agent.rs:
crates/platform/src/container.rs:
crates/platform/src/df.rs:
crates/platform/src/platform.rs:
crates/platform/src/runtime.rs:
crates/platform/src/threaded.rs:
