/root/repo/target/debug/deps/agentgrid_acl-cdfdb136feb0b9a8.d: crates/acl/src/lib.rs crates/acl/src/agent_id.rs crates/acl/src/content.rs crates/acl/src/envelope.rs crates/acl/src/message.rs crates/acl/src/ontology.rs crates/acl/src/performative.rs crates/acl/src/protocol.rs

/root/repo/target/debug/deps/libagentgrid_acl-cdfdb136feb0b9a8.rlib: crates/acl/src/lib.rs crates/acl/src/agent_id.rs crates/acl/src/content.rs crates/acl/src/envelope.rs crates/acl/src/message.rs crates/acl/src/ontology.rs crates/acl/src/performative.rs crates/acl/src/protocol.rs

/root/repo/target/debug/deps/libagentgrid_acl-cdfdb136feb0b9a8.rmeta: crates/acl/src/lib.rs crates/acl/src/agent_id.rs crates/acl/src/content.rs crates/acl/src/envelope.rs crates/acl/src/message.rs crates/acl/src/ontology.rs crates/acl/src/performative.rs crates/acl/src/protocol.rs

crates/acl/src/lib.rs:
crates/acl/src/agent_id.rs:
crates/acl/src/content.rs:
crates/acl/src/envelope.rs:
crates/acl/src/message.rs:
crates/acl/src/ontology.rs:
crates/acl/src/performative.rs:
crates/acl/src/protocol.rs:
