/root/repo/target/debug/deps/agentgrid_store-0896de2af6794d0e.d: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

/root/repo/target/debug/deps/libagentgrid_store-0896de2af6794d0e.rlib: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

/root/repo/target/debug/deps/libagentgrid_store-0896de2af6794d0e.rmeta: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

crates/store/src/lib.rs:
crates/store/src/classify.rs:
crates/store/src/record.rs:
crates/store/src/replicate.rs:
crates/store/src/store.rs:
