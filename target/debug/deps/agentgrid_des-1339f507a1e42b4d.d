/root/repo/target/debug/deps/agentgrid_des-1339f507a1e42b4d.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

/root/repo/target/debug/deps/agentgrid_des-1339f507a1e42b4d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/job.rs:
crates/des/src/report.rs:
