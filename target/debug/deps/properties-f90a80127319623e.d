/root/repo/target/debug/deps/properties-f90a80127319623e.d: crates/des/tests/properties.rs

/root/repo/target/debug/deps/properties-f90a80127319623e: crates/des/tests/properties.rs

crates/des/tests/properties.rs:
