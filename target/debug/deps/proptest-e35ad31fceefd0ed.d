/root/repo/target/debug/deps/proptest-e35ad31fceefd0ed.d: shims/proptest/src/lib.rs shims/proptest/src/test_runner.rs shims/proptest/src/strategy.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/string.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-e35ad31fceefd0ed.rmeta: shims/proptest/src/lib.rs shims/proptest/src/test_runner.rs shims/proptest/src/strategy.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/num.rs shims/proptest/src/option.rs shims/proptest/src/string.rs Cargo.toml

shims/proptest/src/lib.rs:
shims/proptest/src/test_runner.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/num.rs:
shims/proptest/src/option.rs:
shims/proptest/src/string.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
