/root/repo/target/debug/deps/agentgrid_acl-43f4b780301aec65.d: crates/acl/src/lib.rs crates/acl/src/agent_id.rs crates/acl/src/content.rs crates/acl/src/envelope.rs crates/acl/src/message.rs crates/acl/src/ontology.rs crates/acl/src/performative.rs crates/acl/src/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid_acl-43f4b780301aec65.rmeta: crates/acl/src/lib.rs crates/acl/src/agent_id.rs crates/acl/src/content.rs crates/acl/src/envelope.rs crates/acl/src/message.rs crates/acl/src/ontology.rs crates/acl/src/performative.rs crates/acl/src/protocol.rs Cargo.toml

crates/acl/src/lib.rs:
crates/acl/src/agent_id.rs:
crates/acl/src/content.rs:
crates/acl/src/envelope.rs:
crates/acl/src/message.rs:
crates/acl/src/ontology.rs:
crates/acl/src/performative.rs:
crates/acl/src/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
