/root/repo/target/debug/deps/agentgrid_bench-1666ce1f2d777c0a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid_bench-1666ce1f2d777c0a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
