/root/repo/target/debug/deps/substrates-1cf7cc0a8b9a2371.d: crates/bench/benches/substrates.rs

/root/repo/target/debug/deps/substrates-1cf7cc0a8b9a2371: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
