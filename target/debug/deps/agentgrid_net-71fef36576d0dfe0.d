/root/repo/target/debug/deps/agentgrid_net-71fef36576d0dfe0.d: crates/net/src/lib.rs crates/net/src/cli.rs crates/net/src/device.rs crates/net/src/fault.rs crates/net/src/metrics.rs crates/net/src/mib.rs crates/net/src/oid.rs crates/net/src/oids.rs crates/net/src/snmp.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libagentgrid_net-71fef36576d0dfe0.rlib: crates/net/src/lib.rs crates/net/src/cli.rs crates/net/src/device.rs crates/net/src/fault.rs crates/net/src/metrics.rs crates/net/src/mib.rs crates/net/src/oid.rs crates/net/src/oids.rs crates/net/src/snmp.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libagentgrid_net-71fef36576d0dfe0.rmeta: crates/net/src/lib.rs crates/net/src/cli.rs crates/net/src/device.rs crates/net/src/fault.rs crates/net/src/metrics.rs crates/net/src/mib.rs crates/net/src/oid.rs crates/net/src/oids.rs crates/net/src/snmp.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/cli.rs:
crates/net/src/device.rs:
crates/net/src/fault.rs:
crates/net/src/metrics.rs:
crates/net/src/mib.rs:
crates/net/src/oid.rs:
crates/net/src/oids.rs:
crates/net/src/snmp.rs:
crates/net/src/topology.rs:
