/root/repo/target/debug/deps/feedback_and_mobility-c3b2ca788f4b2592.d: tests/feedback_and_mobility.rs

/root/repo/target/debug/deps/feedback_and_mobility-c3b2ca788f4b2592: tests/feedback_and_mobility.rs

tests/feedback_and_mobility.rs:
