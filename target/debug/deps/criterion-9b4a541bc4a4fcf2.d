/root/repo/target/debug/deps/criterion-9b4a541bc4a4fcf2.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-9b4a541bc4a4fcf2.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
