/root/repo/target/debug/deps/repro-4cfebdd9d60ea7ef.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-4cfebdd9d60ea7ef: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
