/root/repo/target/debug/deps/agentgrid_baselines-280df5ed6ad87f4a.d: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid_baselines-280df5ed6ad87f4a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/centralized.rs:
crates/baselines/src/multiagent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
