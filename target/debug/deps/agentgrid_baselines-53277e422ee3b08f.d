/root/repo/target/debug/deps/agentgrid_baselines-53277e422ee3b08f.d: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

/root/repo/target/debug/deps/libagentgrid_baselines-53277e422ee3b08f.rlib: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

/root/repo/target/debug/deps/libagentgrid_baselines-53277e422ee3b08f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

crates/baselines/src/lib.rs:
crates/baselines/src/centralized.rs:
crates/baselines/src/multiagent.rs:
