/root/repo/target/debug/deps/serde_derive-448491f9b6107208.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-448491f9b6107208.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
