/root/repo/target/debug/deps/agentgrid_net-b6876c0a3c9e63f0.d: crates/net/src/lib.rs crates/net/src/cli.rs crates/net/src/device.rs crates/net/src/fault.rs crates/net/src/metrics.rs crates/net/src/mib.rs crates/net/src/oid.rs crates/net/src/oids.rs crates/net/src/snmp.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libagentgrid_net-b6876c0a3c9e63f0.rmeta: crates/net/src/lib.rs crates/net/src/cli.rs crates/net/src/device.rs crates/net/src/fault.rs crates/net/src/metrics.rs crates/net/src/mib.rs crates/net/src/oid.rs crates/net/src/oids.rs crates/net/src/snmp.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/cli.rs:
crates/net/src/device.rs:
crates/net/src/fault.rs:
crates/net/src/metrics.rs:
crates/net/src/mib.rs:
crates/net/src/oid.rs:
crates/net/src/oids.rs:
crates/net/src/snmp.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
