/root/repo/target/debug/deps/criterion-eebb0ec46facf519.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-eebb0ec46facf519.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
