/root/repo/target/debug/deps/bytes-a6f83227bc315d50.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-a6f83227bc315d50: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
