/root/repo/target/debug/deps/agentgrid_rules-c7860c36bbba0d39.d: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs

/root/repo/target/debug/deps/libagentgrid_rules-c7860c36bbba0d39.rlib: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs

/root/repo/target/debug/deps/libagentgrid_rules-c7860c36bbba0d39.rmeta: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs

crates/rules/src/lib.rs:
crates/rules/src/dsl.rs:
crates/rules/src/engine.rs:
crates/rules/src/fact.rs:
crates/rules/src/pattern.rs:
crates/rules/src/rule.rs:
