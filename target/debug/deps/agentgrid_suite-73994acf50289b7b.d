/root/repo/target/debug/deps/agentgrid_suite-73994acf50289b7b.d: src/lib.rs

/root/repo/target/debug/deps/agentgrid_suite-73994acf50289b7b: src/lib.rs

src/lib.rs:
