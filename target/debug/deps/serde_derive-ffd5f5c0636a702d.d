/root/repo/target/debug/deps/serde_derive-ffd5f5c0636a702d.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-ffd5f5c0636a702d: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
