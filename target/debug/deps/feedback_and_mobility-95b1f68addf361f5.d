/root/repo/target/debug/deps/feedback_and_mobility-95b1f68addf361f5.d: tests/feedback_and_mobility.rs

/root/repo/target/debug/deps/feedback_and_mobility-95b1f68addf361f5: tests/feedback_and_mobility.rs

tests/feedback_and_mobility.rs:
