/root/repo/target/debug/deps/serde_derive-12e68c59cc0d96a8.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-12e68c59cc0d96a8.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
