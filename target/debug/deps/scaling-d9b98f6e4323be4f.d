/root/repo/target/debug/deps/scaling-d9b98f6e4323be4f.d: crates/bench/benches/scaling.rs

/root/repo/target/debug/deps/scaling-d9b98f6e4323be4f: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
