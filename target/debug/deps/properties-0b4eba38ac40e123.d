/root/repo/target/debug/deps/properties-0b4eba38ac40e123.d: crates/net/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0b4eba38ac40e123.rmeta: crates/net/tests/properties.rs Cargo.toml

crates/net/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
