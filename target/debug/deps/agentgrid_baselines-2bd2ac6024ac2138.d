/root/repo/target/debug/deps/agentgrid_baselines-2bd2ac6024ac2138.d: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

/root/repo/target/debug/deps/agentgrid_baselines-2bd2ac6024ac2138: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

crates/baselines/src/lib.rs:
crates/baselines/src/centralized.rs:
crates/baselines/src/multiagent.rs:
