/root/repo/target/debug/examples/quickstart-69aa00ba7a1ec13f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-69aa00ba7a1ec13f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
