/root/repo/target/debug/examples/performance_study-9a1a80d65665b5c5.d: examples/performance_study.rs

/root/repo/target/debug/examples/performance_study-9a1a80d65665b5c5: examples/performance_study.rs

examples/performance_study.rs:
