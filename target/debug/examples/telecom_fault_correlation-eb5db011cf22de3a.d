/root/repo/target/debug/examples/telecom_fault_correlation-eb5db011cf22de3a.d: examples/telecom_fault_correlation.rs Cargo.toml

/root/repo/target/debug/examples/libtelecom_fault_correlation-eb5db011cf22de3a.rmeta: examples/telecom_fault_correlation.rs Cargo.toml

examples/telecom_fault_correlation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
