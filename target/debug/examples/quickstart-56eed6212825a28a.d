/root/repo/target/debug/examples/quickstart-56eed6212825a28a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-56eed6212825a28a: examples/quickstart.rs

examples/quickstart.rs:
