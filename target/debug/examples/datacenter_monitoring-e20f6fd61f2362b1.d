/root/repo/target/debug/examples/datacenter_monitoring-e20f6fd61f2362b1.d: examples/datacenter_monitoring.rs

/root/repo/target/debug/examples/datacenter_monitoring-e20f6fd61f2362b1: examples/datacenter_monitoring.rs

examples/datacenter_monitoring.rs:
