/root/repo/target/debug/examples/telecom_fault_correlation-f60db19cfe16b8fa.d: examples/telecom_fault_correlation.rs

/root/repo/target/debug/examples/telecom_fault_correlation-f60db19cfe16b8fa: examples/telecom_fault_correlation.rs

examples/telecom_fault_correlation.rs:
