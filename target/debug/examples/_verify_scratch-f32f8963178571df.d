/root/repo/target/debug/examples/_verify_scratch-f32f8963178571df.d: examples/_verify_scratch.rs

/root/repo/target/debug/examples/_verify_scratch-f32f8963178571df: examples/_verify_scratch.rs

examples/_verify_scratch.rs:
