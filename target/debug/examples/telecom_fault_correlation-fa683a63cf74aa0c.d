/root/repo/target/debug/examples/telecom_fault_correlation-fa683a63cf74aa0c.d: examples/telecom_fault_correlation.rs

/root/repo/target/debug/examples/telecom_fault_correlation-fa683a63cf74aa0c: examples/telecom_fault_correlation.rs

examples/telecom_fault_correlation.rs:
