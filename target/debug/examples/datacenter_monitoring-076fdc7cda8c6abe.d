/root/repo/target/debug/examples/datacenter_monitoring-076fdc7cda8c6abe.d: examples/datacenter_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libdatacenter_monitoring-076fdc7cda8c6abe.rmeta: examples/datacenter_monitoring.rs Cargo.toml

examples/datacenter_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
