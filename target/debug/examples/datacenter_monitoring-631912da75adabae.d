/root/repo/target/debug/examples/datacenter_monitoring-631912da75adabae.d: examples/datacenter_monitoring.rs

/root/repo/target/debug/examples/datacenter_monitoring-631912da75adabae: examples/datacenter_monitoring.rs

examples/datacenter_monitoring.rs:
