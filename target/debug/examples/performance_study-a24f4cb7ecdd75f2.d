/root/repo/target/debug/examples/performance_study-a24f4cb7ecdd75f2.d: examples/performance_study.rs

/root/repo/target/debug/examples/performance_study-a24f4cb7ecdd75f2: examples/performance_study.rs

examples/performance_study.rs:
