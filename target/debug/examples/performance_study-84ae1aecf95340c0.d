/root/repo/target/debug/examples/performance_study-84ae1aecf95340c0.d: examples/performance_study.rs Cargo.toml

/root/repo/target/debug/examples/libperformance_study-84ae1aecf95340c0.rmeta: examples/performance_study.rs Cargo.toml

examples/performance_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
