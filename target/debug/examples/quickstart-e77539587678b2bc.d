/root/repo/target/debug/examples/quickstart-e77539587678b2bc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e77539587678b2bc: examples/quickstart.rs

examples/quickstart.rs:
