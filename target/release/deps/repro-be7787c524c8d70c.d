/root/repo/target/release/deps/repro-be7787c524c8d70c.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-be7787c524c8d70c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
