/root/repo/target/release/deps/agentgrid_des-dbe14fbc9a055b29.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

/root/repo/target/release/deps/libagentgrid_des-dbe14fbc9a055b29.rlib: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

/root/repo/target/release/deps/libagentgrid_des-dbe14fbc9a055b29.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/job.rs crates/des/src/report.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/job.rs:
crates/des/src/report.rs:
