/root/repo/target/release/deps/serde_derive-a162ad593d5ea80d.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-a162ad593d5ea80d.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
