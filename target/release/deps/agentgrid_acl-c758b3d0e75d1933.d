/root/repo/target/release/deps/agentgrid_acl-c758b3d0e75d1933.d: crates/acl/src/lib.rs crates/acl/src/agent_id.rs crates/acl/src/content.rs crates/acl/src/envelope.rs crates/acl/src/message.rs crates/acl/src/ontology.rs crates/acl/src/performative.rs crates/acl/src/protocol.rs

/root/repo/target/release/deps/libagentgrid_acl-c758b3d0e75d1933.rlib: crates/acl/src/lib.rs crates/acl/src/agent_id.rs crates/acl/src/content.rs crates/acl/src/envelope.rs crates/acl/src/message.rs crates/acl/src/ontology.rs crates/acl/src/performative.rs crates/acl/src/protocol.rs

/root/repo/target/release/deps/libagentgrid_acl-c758b3d0e75d1933.rmeta: crates/acl/src/lib.rs crates/acl/src/agent_id.rs crates/acl/src/content.rs crates/acl/src/envelope.rs crates/acl/src/message.rs crates/acl/src/ontology.rs crates/acl/src/performative.rs crates/acl/src/protocol.rs

crates/acl/src/lib.rs:
crates/acl/src/agent_id.rs:
crates/acl/src/content.rs:
crates/acl/src/envelope.rs:
crates/acl/src/message.rs:
crates/acl/src/ontology.rs:
crates/acl/src/performative.rs:
crates/acl/src/protocol.rs:
