/root/repo/target/release/deps/agentgrid_suite-26902af6094c060f.d: src/lib.rs

/root/repo/target/release/deps/libagentgrid_suite-26902af6094c060f.rlib: src/lib.rs

/root/repo/target/release/deps/libagentgrid_suite-26902af6094c060f.rmeta: src/lib.rs

src/lib.rs:
