/root/repo/target/release/deps/agentgrid-ad397543e6c5e47c.d: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/broker.rs crates/core/src/costmodel.rs crates/core/src/grid/mod.rs crates/core/src/grid/analyzer.rs crates/core/src/grid/classifier.rs crates/core/src/grid/collector.rs crates/core/src/grid/interface.rs crates/core/src/grid/root.rs crates/core/src/grid/system.rs crates/core/src/mobility.rs crates/core/src/scenario.rs crates/core/src/workflow.rs

/root/repo/target/release/deps/libagentgrid-ad397543e6c5e47c.rlib: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/broker.rs crates/core/src/costmodel.rs crates/core/src/grid/mod.rs crates/core/src/grid/analyzer.rs crates/core/src/grid/classifier.rs crates/core/src/grid/collector.rs crates/core/src/grid/interface.rs crates/core/src/grid/root.rs crates/core/src/grid/system.rs crates/core/src/mobility.rs crates/core/src/scenario.rs crates/core/src/workflow.rs

/root/repo/target/release/deps/libagentgrid-ad397543e6c5e47c.rmeta: crates/core/src/lib.rs crates/core/src/balance.rs crates/core/src/broker.rs crates/core/src/costmodel.rs crates/core/src/grid/mod.rs crates/core/src/grid/analyzer.rs crates/core/src/grid/classifier.rs crates/core/src/grid/collector.rs crates/core/src/grid/interface.rs crates/core/src/grid/root.rs crates/core/src/grid/system.rs crates/core/src/mobility.rs crates/core/src/scenario.rs crates/core/src/workflow.rs

crates/core/src/lib.rs:
crates/core/src/balance.rs:
crates/core/src/broker.rs:
crates/core/src/costmodel.rs:
crates/core/src/grid/mod.rs:
crates/core/src/grid/analyzer.rs:
crates/core/src/grid/classifier.rs:
crates/core/src/grid/collector.rs:
crates/core/src/grid/interface.rs:
crates/core/src/grid/root.rs:
crates/core/src/grid/system.rs:
crates/core/src/mobility.rs:
crates/core/src/scenario.rs:
crates/core/src/workflow.rs:
