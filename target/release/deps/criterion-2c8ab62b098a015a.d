/root/repo/target/release/deps/criterion-2c8ab62b098a015a.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-2c8ab62b098a015a.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-2c8ab62b098a015a.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
