/root/repo/target/release/deps/agentgrid_baselines-dedbbf1c1bf1b3b5.d: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

/root/repo/target/release/deps/libagentgrid_baselines-dedbbf1c1bf1b3b5.rlib: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

/root/repo/target/release/deps/libagentgrid_baselines-dedbbf1c1bf1b3b5.rmeta: crates/baselines/src/lib.rs crates/baselines/src/centralized.rs crates/baselines/src/multiagent.rs

crates/baselines/src/lib.rs:
crates/baselines/src/centralized.rs:
crates/baselines/src/multiagent.rs:
