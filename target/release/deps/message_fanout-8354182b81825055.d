/root/repo/target/release/deps/message_fanout-8354182b81825055.d: crates/bench/benches/message_fanout.rs

/root/repo/target/release/deps/message_fanout-8354182b81825055: crates/bench/benches/message_fanout.rs

crates/bench/benches/message_fanout.rs:
