/root/repo/target/release/deps/agentgrid_rules-d6fa04bdd27d8cb0.d: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs

/root/repo/target/release/deps/libagentgrid_rules-d6fa04bdd27d8cb0.rlib: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs

/root/repo/target/release/deps/libagentgrid_rules-d6fa04bdd27d8cb0.rmeta: crates/rules/src/lib.rs crates/rules/src/dsl.rs crates/rules/src/engine.rs crates/rules/src/fact.rs crates/rules/src/pattern.rs crates/rules/src/rule.rs

crates/rules/src/lib.rs:
crates/rules/src/dsl.rs:
crates/rules/src/engine.rs:
crates/rules/src/fact.rs:
crates/rules/src/pattern.rs:
crates/rules/src/rule.rs:
