/root/repo/target/release/deps/rand-3df6055813c1c8ca.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-3df6055813c1c8ca.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-3df6055813c1c8ca.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
