/root/repo/target/release/deps/agentgrid_bench-d356866e759c143e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libagentgrid_bench-d356866e759c143e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libagentgrid_bench-d356866e759c143e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
