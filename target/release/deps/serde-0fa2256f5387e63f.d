/root/repo/target/release/deps/serde-0fa2256f5387e63f.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-0fa2256f5387e63f.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-0fa2256f5387e63f.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
