/root/repo/target/release/deps/crossbeam-4444af21bd758749.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-4444af21bd758749.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-4444af21bd758749.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
