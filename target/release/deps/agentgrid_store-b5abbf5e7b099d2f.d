/root/repo/target/release/deps/agentgrid_store-b5abbf5e7b099d2f.d: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

/root/repo/target/release/deps/libagentgrid_store-b5abbf5e7b099d2f.rlib: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

/root/repo/target/release/deps/libagentgrid_store-b5abbf5e7b099d2f.rmeta: crates/store/src/lib.rs crates/store/src/classify.rs crates/store/src/record.rs crates/store/src/replicate.rs crates/store/src/store.rs

crates/store/src/lib.rs:
crates/store/src/classify.rs:
crates/store/src/record.rs:
crates/store/src/replicate.rs:
crates/store/src/store.rs:
