/root/repo/target/release/deps/bytes-a32f16cce68d22b4.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-a32f16cce68d22b4.rlib: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-a32f16cce68d22b4.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
