/root/repo/target/release/deps/agentgrid_platform-95812b6a359adca9.d: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

/root/repo/target/release/deps/libagentgrid_platform-95812b6a359adca9.rlib: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

/root/repo/target/release/deps/libagentgrid_platform-95812b6a359adca9.rmeta: crates/platform/src/lib.rs crates/platform/src/agent.rs crates/platform/src/container.rs crates/platform/src/df.rs crates/platform/src/platform.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

crates/platform/src/lib.rs:
crates/platform/src/agent.rs:
crates/platform/src/container.rs:
crates/platform/src/df.rs:
crates/platform/src/platform.rs:
crates/platform/src/runtime.rs:
crates/platform/src/threaded.rs:
