/root/repo/target/release/deps/parking_lot-efa8bd46401b27a7.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-efa8bd46401b27a7.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-efa8bd46401b27a7.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
