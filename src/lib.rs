//! Umbrella crate for the `agentgrid` workspace.
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use agentgrid_suite::acl::{AgentId, Performative};
//! let id = AgentId::new("root@grid");
//! assert_eq!(id.platform(), Some("grid"));
//! ```

#![forbid(unsafe_code)]

pub use agentgrid as core;
pub use agentgrid_acl as acl;
pub use agentgrid_baselines as baselines;
pub use agentgrid_des as des;
pub use agentgrid_net as net;
pub use agentgrid_platform as platform;
pub use agentgrid_rules as rules;
pub use agentgrid_store as store;
pub use agentgrid_telemetry as telemetry;

// The headline types, at the top for convenience.
pub use agentgrid::grid::{GridReport, ManagementGrid};
pub use agentgrid::{Architecture, CostModel, Workload};
